/**
 * @file
 * The domain-noninterference contract checkers (src/contract).
 *
 * Three layers under test: the taint lattice that explains dynamic
 * divergences, the combined checker's verdict on stock configurations
 * (clean, with every static over-approximation discharged) and on the
 * contract-violation attack family (a confirmed first-divergence
 * trace), and the static/dynamic agreement invariant across the whole
 * attack corpus — after a full run nothing is left PLAUSIBLE, and a
 * confirmed static violation exists exactly where the oracle also
 * diverges.
 */

#include <gtest/gtest.h>

#include "attacks/attacks.hh"
#include "contract/contract.hh"
#include "contract/taint.hh"
#include "isa/riscv/opcodes.hh"
#include "isa/x86/opcodes.hh"
#include "kernel/kernel_builder.hh"
#include "kernel/layout.hh"

using namespace isagrid;

namespace {

constexpr const char *maskProbe = "Mask-probe side channel";

/** Trimmed exploration caps: the findings fire at depth 1-2. */
ContractOptions
testOptions()
{
    ContractOptions opt;
    opt.max_windows = 8;
    opt.max_insts = 50'000;
    opt.depth_bound = 4;
    opt.max_states = 4096;
    return opt;
}

ContractScenario
kernelScenario(bool x86, KernelMode mode, Cycle timer = 0,
               bool tstacks = false)
{
    ContractScenario scenario;
    KernelConfig config;
    config.mode = mode;
    config.timer_interval = timer;
    config.per_thread_tstack = tstacks;
    scenario.build = [x86, config]() {
        auto machine = x86 ? Machine::gem5x86() : Machine::rocket();
        auto ua = x86 ? makeX86Asm(layout::userCodeBase)
                      : makeRiscvAsm(layout::userCodeBase);
        ua->li(ua->regArg(0), 0);
        ua->halt(ua->regArg(0));
        ua->loadInto(machine->mem());
        KernelBuilder builder(*machine, config);
        builder.build(layout::userCodeBase);
        return machine;
    };
    auto probe = x86 ? Machine::gem5x86() : Machine::rocket();
    auto pa = x86 ? makeX86Asm(layout::userCodeBase)
                  : makeRiscvAsm(layout::userCodeBase);
    pa->li(pa->regArg(0), 0);
    pa->halt(pa->regArg(0));
    pa->loadInto(probe->mem());
    KernelBuilder builder(*probe, config);
    KernelImage image = builder.build(layout::userCodeBase);
    scenario.start_pc = image.boot_pc;
    scenario.code_regions = image.code_regions;
    return scenario;
}

ContractScenario
attackScenario(const AttackScenario &s, bool x86)
{
    ContractScenario scenario;
    scenario.build = [s, x86]() {
        PreparedAttack prepared = prepareAttack(s, x86, true);
        return std::move(prepared.machine);
    };
    PreparedAttack prepared = prepareAttack(s, x86, true);
    scenario.start_pc = prepared.payload_entry;
    scenario.start_domain = prepared.payload_domain;
    scenario.code_regions = prepared.image.code_regions;
    return scenario;
}

const AttackScenario *
findAttack(const std::vector<AttackScenario> &list,
           const std::string &name)
{
    for (const AttackScenario &s : list)
        if (s.name == name)
            return &s;
    return nullptr;
}

const ContractFinding *
findCheck(const ContractReport &report, const std::string &check)
{
    for (const ContractFinding &f : report.findings)
        if (f.check == check)
            return &f;
    return nullptr;
}

} // namespace

// ---------------------------------------------------------------------
// Taint lattice
// ---------------------------------------------------------------------

TEST(Taint, SeedsAccumulateAndQueryByPage)
{
    auto m = Machine::rocket();
    TaintTracker taint(m->isa());
    taint.seedCsr(riscv::CSR_SSTATUS, 0x0f);
    taint.seedCsr(riscv::CSR_SSTATUS, 0xf0);
    EXPECT_EQ(taint.csrTaint(riscv::CSR_SSTATUS), 0xffu);
    EXPECT_EQ(taint.csrTaint(riscv::CSR_SATP), 0u);
    ASSERT_EQ(taint.csrSeeds().size(), 1u);
    EXPECT_EQ(taint.csrSeeds().at(riscv::CSR_SSTATUS), 0xffu);

    taint.seedPage(0x50008);
    EXPECT_TRUE(taint.pageTainted(0x50ff8));  // same 4 KiB page
    EXPECT_FALSE(taint.pageTainted(0x51000)); // next page
    EXPECT_NE(taint.describeCsr(riscv::CSR_SSTATUS).find("tainted"),
              std::string::npos);
}

TEST(Taint, PropagatesThroughRegistersMemoryAndBranches)
{
    constexpr Addr base = 0x40000;
    constexpr Addr scratch = 0x50000;
    auto m = Machine::rocket();
    auto as = makeRiscvAsm(base);
    as->li(as->regArg(1), scratch);
    as->csrRead(as->regTmp(0), riscv::CSR_SSTATUS);
    as->mov(as->regTmp(1), as->regTmp(0));
    as->store64(as->regTmp(0), as->regArg(1), 0);
    AsmIface::Label skip = as->newLabel();
    as->beqz(as->regTmp(1), skip);
    as->bind(skip);
    as->li(as->regTmp(0), 5); // overwrite launders the register
    as->li(as->regArg(0), 0);
    as->halt(as->regArg(0));
    as->loadInto(m->mem());

    m->core().reset(base);
    TaintTracker taint(m->isa());
    taint.seedCsr(riscv::CSR_SSTATUS, 0xff);
    m->core().setStepHook(&taint);
    RunResult r = m->core().run(32);
    m->core().setStepHook(nullptr);
    ASSERT_EQ(r.reason, StopReason::Halted) << faultName(r.fault);

    EXPECT_EQ(taint.regTaint(as->regTmp(1)), 0xffu)
        << taint.describeReg(as->regTmp(1));
    EXPECT_EQ(taint.regTaint(as->regTmp(0)), 0u)
        << "immediate load must launder the register";
    EXPECT_TRUE(taint.pageTainted(scratch));
    EXPECT_TRUE(taint.controlTainted())
        << "branch on a tainted register reaches the PC";
}

// ---------------------------------------------------------------------
// Stock configurations are noninterference-clean
// ---------------------------------------------------------------------

class ContractStock
    : public ::testing::TestWithParam<std::tuple<bool, KernelMode>>
{
};

TEST_P(ContractStock, CleanWithNothingLeftPlausible)
{
    auto [x86, mode] = GetParam();
    ContractReport report =
        checkContract(kernelScenario(x86, mode), testOptions());
    EXPECT_TRUE(report.clean()) << report.text();
    EXPECT_EQ(report.plausible(), 0u) << report.text();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ContractStock,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(KernelMode::Decomposed,
                                         KernelMode::NestedMonitor)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ? "x86" : "riscv") +
               (std::get<1>(info.param) == KernelMode::Decomposed
                    ? "_decomposed"
                    : "_nested");
    });

TEST(ContractStock, TimerAndPerThreadStacksStayClean)
{
    ContractReport report = checkContract(
        kernelScenario(false, KernelMode::Decomposed, 500, true),
        testOptions());
    EXPECT_TRUE(report.clean()) << report.text();
    EXPECT_EQ(report.plausible(), 0u) << report.text();
}

// ---------------------------------------------------------------------
// The contract-violation attack family is detected and confirmed
// ---------------------------------------------------------------------

class ContractAttack : public ::testing::TestWithParam<bool>
{
};

TEST_P(ContractAttack, MaskProbeYieldsConfirmedFirstDivergence)
{
    bool x86 = GetParam();
    std::vector<AttackScenario> list = attackScenarios(x86);
    const AttackScenario *s = findAttack(list, maskProbe);
    ASSERT_NE(s, nullptr);
    ContractReport report =
        checkContract(attackScenario(*s, x86), testOptions());

    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.plausible(), 0u) << report.text();

    const ContractFinding *dyn = findCheck(report, "dyn-divergence");
    ASSERT_NE(dyn, nullptr) << report.text();
    EXPECT_EQ(dyn->severity, Severity::Violation);
    EXPECT_EQ(dyn->verdict, ContractVerdict::Confirmed);
    std::uint32_t probed = x86 ? x86::CSR_CR4 : riscv::CSR_SSTATUS;
    EXPECT_EQ(dyn->csr_addr, probed);
    EXPECT_FALSE(dyn->divergence.empty());
    EXPECT_NE(dyn->pc, 0u) << "first-divergence trace must name a PC";

    // The static checker finds the same channel, and the targeted
    // capability probe confirms it (no Discharged demotion).
    const ContractFinding *rel = findCheck(report, "rel-mask-observe");
    ASSERT_NE(rel, nullptr) << report.text();
    EXPECT_EQ(rel->verdict, ContractVerdict::Confirmed);
    EXPECT_EQ(rel->severity, Severity::Violation);
    EXPECT_EQ(rel->csr_addr, probed);
    EXPECT_FALSE(rel->trace.empty());
}

INSTANTIATE_TEST_SUITE_P(Isas, ContractAttack, ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? "x86" : "riscv";
                         });

// ---------------------------------------------------------------------
// Static/dynamic agreement across the whole corpus
// ---------------------------------------------------------------------

class ContractAgreement : public ::testing::TestWithParam<bool>
{
};

TEST_P(ContractAgreement, CheckersNeverDisagreeSilently)
{
    bool x86 = GetParam();
    ContractOptions opt = testOptions();
    opt.depth_bound = 3;
    opt.max_states = 2048;
    opt.max_windows = 4;
    opt.max_insts = 20'000;
    for (const AttackScenario &s : attackScenarios(x86)) {
        ContractReport report =
            checkContract(attackScenario(s, x86), opt);
        EXPECT_EQ(report.plausible(), 0u)
            << s.name << ":\n" << report.text();

        bool dyn_diverged =
            findCheck(report, "dyn-divergence") != nullptr;
        std::size_t confirmed_static = 0;
        for (const ContractFinding &f : report.findings) {
            if (f.check != "dyn-divergence" &&
                f.severity == Severity::Violation)
                confirmed_static +=
                    f.verdict == ContractVerdict::Confirmed;
        }
        bool is_contract_attack = s.name == maskProbe;
        EXPECT_EQ(dyn_diverged, is_contract_attack)
            << s.name << ":\n" << report.text();
        EXPECT_EQ(confirmed_static > 0, is_contract_attack)
            << s.name << ":\n" << report.text();
    }
}

INSTANTIATE_TEST_SUITE_P(Isas, ContractAgreement, ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? "x86" : "riscv";
                         });

// ---------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------

TEST(ContractReportRender, TextAndJsonCarryVerdictsAndStats)
{
    ContractReport report;
    ContractFinding dyn;
    dyn.severity = Severity::Violation;
    dyn.check = "dyn-divergence";
    dyn.domain = 2;
    dyn.csr_addr = 0x100;
    dyn.message = "domain 2 distinguishes high states";
    dyn.step = 41;
    dyn.pc = 0x60004;
    dyn.divergence = "run outcome differs";
    report.findings.push_back(dyn);

    ContractFinding rel;
    rel.severity = Severity::Warning;
    rel.check = "rel-high-flow";
    rel.domain = 1;
    rel.csr_addr = 0x1004;
    rel.message = "flow with \"quotes\"";
    rel.src_csrs = {0x1000, 0x1003};
    rel.verdict = ContractVerdict::Discharged;
    TraceStep step;
    step.kind = TraceStep::Kind::CsrWrite;
    step.csr_addr = 0x1004;
    rel.trace.push_back(step);
    report.findings.push_back(rel);
    report.stats.windows = 3;
    report.stats.discharges = 1;

    EXPECT_EQ(report.violations(), 1u);
    EXPECT_EQ(report.warnings(), 1u);
    EXPECT_EQ(report.confirmed(), 1u);
    EXPECT_EQ(report.discharged(), 1u);
    EXPECT_EQ(report.plausible(), 0u);
    EXPECT_FALSE(report.clean());

    std::string text = report.text();
    EXPECT_NE(text.find("dyn-divergence"), std::string::npos);
    EXPECT_NE(text.find("[confirmed]"), std::string::npos);
    EXPECT_NE(text.find("[discharged]"), std::string::npos);
    EXPECT_NE(text.find("step 41 pc 0x60004"), std::string::npos);

    std::string json = report.json();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"summary\":{\"violations\":1,\"warnings\":1,"
                        "\"confirmed\":1,\"discharged\":1,"
                        "\"plausible\":0,\"total\":2,\"recorded\":2}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"src_csrs\":[\"0x1000\",\"0x1003\"]"),
              std::string::npos);
    EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
    EXPECT_NE(json.find("\"windows\":3"), std::string::npos);
}
