/**
 * @file
 * Superset-disassembly audit tests (verify/superset.hh, isagrid-xscan).
 *
 * Four properties anchor the analysis:
 *  - determinism: decoding every byte offset of every stock image is a
 *    pure function of the bytes, run to run and against the simulator's
 *    DecodeCache fast path;
 *  - stock images audit clean on both ISAs in every kernel mode (all
 *    entry points and resolved targets are aligned, so the misaligned
 *    superset is pruned away);
 *  - the hidden-instruction-chain attacks are flagged statically with
 *    the two-hop reachability chain recorded, and every finding is
 *    dynamically confirmed — a full runXscan never leaves a finding
 *    Plausible;
 *  - the whole attack corpus discharges completely (no Plausible
 *    leftovers anywhere, on either ISA).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "attacks/attacks.hh"
#include "cpu/decode_cache.hh"
#include "cpu/machine.hh"
#include "isa/disasm.hh"
#include "kernel/kernel_builder.hh"
#include "kernel/layout.hh"
#include "verify/superset.hh"

using namespace isagrid;

namespace {

/** Build a stock kernel machine + image, as the CLI does. */
struct BuiltKernel
{
    std::unique_ptr<Machine> machine;
    KernelImage image;
};

BuiltKernel
buildKernel(bool x86, KernelMode mode, bool tstacks = false)
{
    BuiltKernel b;
    b.machine = x86 ? Machine::gem5x86() : Machine::rocket();
    auto ua = x86 ? makeX86Asm(layout::userCodeBase)
                  : makeRiscvAsm(layout::userCodeBase);
    ua->li(ua->regArg(0), 0);
    ua->halt(ua->regArg(0));
    ua->loadInto(b.machine->mem());

    KernelConfig config;
    config.mode = mode;
    config.per_thread_tstack = tstacks;
    KernelBuilder builder(*b.machine, config);
    b.image = builder.build(layout::userCodeBase);
    return b;
}

XscanScenario
kernelScenario(bool x86, KernelMode mode)
{
    XscanScenario scenario;
    scenario.build = [x86, mode]() {
        BuiltKernel b = buildKernel(x86, mode);
        return std::move(b.machine);
    };
    BuiltKernel probe = buildKernel(x86, mode);
    scenario.entries = {probe.image.boot_pc, probe.image.trap_entry};
    scenario.code_regions = probe.image.code_regions;
    return scenario;
}

XscanScenario
attackScenarioFor(bool x86, const std::string &name)
{
    for (const AttackScenario &s : attackScenarios(x86)) {
        if (s.name != name)
            continue;
        XscanScenario scenario;
        scenario.build = [s, x86]() {
            return std::move(prepareAttack(s, x86, true).machine);
        };
        PreparedAttack probe = prepareAttack(s, x86, true);
        scenario.entries = {probe.image.boot_pc, probe.image.trap_entry,
                            probe.payload_entry};
        scenario.code_regions = probe.image.code_regions;
        return scenario;
    }
    ADD_FAILURE() << "no scenario " << name;
    return {};
}

} // namespace

/**
 * Every byte offset of every stock code region decodes identically on
 * repeated runs, and identically through a DecodeCache insert/lookup
 * round-trip (valid instructions only — the cache never memoizes
 * invalid decodes).
 */
TEST(Superset, ExhaustiveOffsetDecodeIsDeterministic)
{
    for (bool x86 : {false, true}) {
        BuiltKernel b = buildKernel(x86, KernelMode::Decomposed);
        const IsaModel &isa = b.machine->isa();
        const PhysMem &mem = b.machine->mem();
        DecodeCache cache(mem, 1024);
        Addr step = isa.maxInstBytes() > 4 ? 1 : 2;
        std::size_t offsets = 0;
        for (const CodeRegion &region : b.image.code_regions) {
            for (Addr pc = region.base; pc < region.limit; pc += step) {
                DecodedInst first = decodeAt(isa, mem, pc);
                DecodedInst again = decodeAt(isa, mem, pc);
                ASSERT_EQ(first.valid, again.valid) << std::hex << pc;
                ASSERT_EQ(first.length, again.length) << std::hex << pc;
                ASSERT_STREQ(first.mnemonic, again.mnemonic)
                    << std::hex << pc;
                if (!first.valid)
                    continue;
                // Round-trip through the simulator's decode cache: a
                // hit must reproduce the direct decode bit-for-bit.
                if (const auto *hit = cache.lookup(pc)) {
                    ASSERT_STREQ(hit->inst.mnemonic, first.mnemonic);
                    ASSERT_EQ(hit->inst.length, first.length);
                } else {
                    cache.insert(pc, first, isa.instPrivileged(first),
                                 false);
                    const auto *filled = cache.lookup(pc);
                    ASSERT_NE(filled, nullptr) << std::hex << pc;
                    ASSERT_STREQ(filled->inst.mnemonic, first.mnemonic);
                }
                ++offsets;
            }
        }
        EXPECT_GT(offsets, 0u) << (x86 ? "x86" : "riscv");
    }
}

/** Stock images audit clean in every mode, on both ISAs. */
TEST(Superset, StockImagesScanClean)
{
    for (bool x86 : {false, true}) {
        for (KernelMode mode :
             {KernelMode::Monolithic, KernelMode::Decomposed,
              KernelMode::NestedMonitor}) {
            XscanScenario scenario = kernelScenario(x86, mode);
            XscanReport report = runXscan(scenario);
            EXPECT_EQ(report.violations(), 0u)
                << (x86 ? "x86" : "riscv") << " mode "
                << int(mode) << "\n" << report.text();
            EXPECT_EQ(report.warnings(), 0u)
                << (x86 ? "x86" : "riscv") << " mode " << int(mode);
            EXPECT_EQ(report.plausible(), 0u);
            EXPECT_TRUE(report.clean());
            EXPECT_GT(report.stats.offsets_scanned, 0u);
            EXPECT_GT(report.stats.entry_points, 0u);
        }
    }
}

/**
 * The two-hop hidden-instruction chains: found statically with the
 * full reachability chain, predicted fault isagrid-inst-privilege,
 * and confirmed dynamically.
 */
TEST(Superset, HiddenChainAttacksFlaggedAndConfirmed)
{
    struct Row
    {
        bool x86;
        const char *name;
    };
    for (const Row &row :
         {Row{true, "Hidden instruction chain (immediates)"},
          Row{false, "Hidden instruction chain (carrier words)"}}) {
        XscanScenario scenario = attackScenarioFor(row.x86, row.name);
        ASSERT_TRUE(scenario.build);

        // Static half alone: the finding exists but stays Plausible.
        XscanOptions static_only;
        static_only.run_dynamic = false;
        XscanReport st = runXscan(scenario, static_only);
        ASSERT_EQ(st.violations(), 1u) << row.name << "\n" << st.text();
        const XscanFinding &f = st.findings().front();
        EXPECT_EQ(f.check, "ui-priv-escape");
        EXPECT_EQ(f.expect, FaultType::InstPrivilege);
        EXPECT_EQ(f.verdict, XscanVerdict::Plausible);
        // Two hops: the hidden jump the payload enters at, then the
        // hidden privileged instruction it lands on.
        ASSERT_GE(f.chain.size(), 2u) << row.name;
        EXPECT_EQ(f.chain.back(), f.addr);
        // Only the x86 chain hides inside a *valid* aligned carrier
        // (the movabs); the RISC-V carrier words are themselves
        // undecodable at their aligned boundary, so no carrier exists.
        if (row.x86)
            EXPECT_NE(f.carrier_pc, 0u);
        EXPECT_FALSE(f.hidden_text.empty());

        // Full audit: everything discharges, nothing stays Plausible.
        XscanReport full = runXscan(scenario);
        ASSERT_EQ(full.violations(), 1u) << full.text();
        EXPECT_EQ(full.confirmed(), 1u) << full.text();
        EXPECT_EQ(full.plausible(), 0u) << full.text();
        EXPECT_EQ(full.findings().front().verdict,
                  XscanVerdict::Confirmed);
    }
}

/**
 * Corpus-wide discharge: across every attack scenario on both ISAs, a
 * full audit never leaves a finding Plausible — the static analysis
 * never claims anything the machine does not reproduce.
 */
TEST(Superset, NoFindingSurvivesPlausibleAcrossCorpus)
{
    for (bool x86 : {false, true}) {
        for (const AttackScenario &s : attackScenarios(x86)) {
            XscanScenario scenario = attackScenarioFor(x86, s.name);
            XscanReport report = runXscan(scenario);
            EXPECT_EQ(report.plausible(), 0u)
                << (x86 ? "x86 " : "riscv ") << s.name << "\n"
                << report.text();
            for (const XscanFinding &f : report.findings())
                EXPECT_NE(f.verdict, XscanVerdict::Plausible)
                    << s.name << " @ " << std::hex << f.addr;
        }
    }
}
