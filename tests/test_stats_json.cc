/**
 * @file
 * Histogram statistic semantics and a golden-file lock on the
 * `--stats-json` output schema: the full Machine::dumpStatsJson key
 * set of a freshly built rocket() machine (every modeled stat plus
 * the `host.*` decode-cache/block-engine counters), values all zero
 * or null because the machine never runs.
 *
 * The golden file is tests/data/stats_dump.golden.json; regenerate it
 * deliberately with ISAGRID_REGEN_GOLDEN=1 after an intentional
 * schema change and commit the diff.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "cpu/machine.hh"
#include "sim/stats.hh"

using namespace isagrid;

namespace {

std::string
goldenPath()
{
    return std::string(TEST_DATA_DIR) + "/stats_dump.golden.json";
}

/**
 * A group exercising every renderer branch: integral and fractional
 * counters, a NaN formula (null in JSON), a nested child group, and a
 * histogram with samples across several buckets.
 */
struct SampleStats
{
    Counter hits;
    Counter misses;
    Histogram latency{6};
    StatGroup group{"pcu"};
    StatGroup child{"cache"};

    SampleStats()
    {
        hits += 1500;
        misses += 42;
        for (std::uint64_t v : {0, 1, 2, 3, 8, 40, 100})
            latency.sample(v);

        group.addCounter("hits", hits, "lookup hits");
        group.addFormula("hit_rate", [this] {
            return double(hits.value()) /
                   double(hits.value() + misses.value());
        });
        group.addFormula("undefined", [] { return std::nan(""); });
        group.addHistogram("latency", latency, "stall cycles");
        child.addCounter("misses", misses);
        group.addChild(child);
    }
};

} // namespace

TEST(Histogram, BucketsByPowerOfTwoWithExactMoments)
{
    Histogram h{4};
    // bucket 0: v == 0; bucket 1: [1, 1]; bucket 2: [2, 3];
    // bucket 3 (last): [4, inf) — values past the end clamp into it.
    for (std::uint64_t v : {0, 1, 2, 3, 4, 1000})
        h.sample(v);

    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 2u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.sum(), 1010u);
    // Moments are exact regardless of the bucket a sample landed in.
    EXPECT_DOUBLE_EQ(h.mean(), 1010.0 / 6.0);
    EXPECT_NEAR(h.stddev(), 407.434, 0.001);

    EXPECT_EQ(h.bucketLow(0), 0u);
    EXPECT_EQ(h.bucketHigh(0), 0u);
    EXPECT_EQ(h.bucketLow(2), 2u);
    EXPECT_EQ(h.bucketHigh(2), 3u);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(3), 0u);
    EXPECT_EQ(h.min(), 0u);
}

TEST(Histogram, RegistersInAStatGroup)
{
    Histogram h{4};
    h.sample(5);
    h.sample(7);
    StatGroup group{"g"};
    group.addHistogram("lat", h);

    EXPECT_DOUBLE_EQ(group.lookup("g.lat.count"), 2.0);
    EXPECT_DOUBLE_EQ(group.lookup("g.lat.min"), 5.0);
    EXPECT_DOUBLE_EQ(group.lookup("g.lat.max"), 7.0);
    EXPECT_DOUBLE_EQ(group.lookup("g.lat.mean"), 6.0);
    EXPECT_DOUBLE_EQ(group.lookup("g.lat.bucket03"), 2.0);
    EXPECT_TRUE(std::isnan(group.lookup("g.lat.bucket99")));
}

TEST(StatsJson, DumpMatchesGoldenFile)
{
    // A never-run machine renders deterministically (zero counters,
    // null formulas), so the golden locks the complete key schema —
    // including the host.* block-engine and decode-cache counters,
    // present with zeros even though only the decode cache is on.
    auto machine = Machine::rocket();
    std::stringstream ss;
    machine->dumpStatsJson(ss);
    std::string actual = ss.str();

    if (std::getenv("ISAGRID_REGEN_GOLDEN")) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << actual;
        GTEST_SKIP() << "golden file regenerated at " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in) << "missing golden file " << goldenPath()
                    << " (run once with ISAGRID_REGEN_GOLDEN=1)";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(actual, buf.str())
        << "--stats-json schema drifted; if intentional, regenerate "
           "with ISAGRID_REGEN_GOLDEN=1 and commit";
}

TEST(StatsJson, RendersValuesByKind)
{
    SampleStats stats;
    std::stringstream ss;
    stats.group.dumpJson(ss);
    std::string json = ss.str();

    EXPECT_EQ(json.front(), '{');
    // Integral values print without an exponent, NaN becomes null,
    // nested child names are dotted, histogram entries expand.
    EXPECT_NE(json.find("\"pcu.hits\": 1500"), std::string::npos);
    EXPECT_NE(json.find("\"pcu.undefined\": null"), std::string::npos);
    EXPECT_NE(json.find("\"pcu.cache.misses\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"pcu.latency.count\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"pcu.latency.bucket00\": 1"),
              std::string::npos);
    EXPECT_EQ(json.find("e+"), std::string::npos);
}
