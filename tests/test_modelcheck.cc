/**
 * @file
 * Tests of the bounded model checker (src/modelcheck) and its
 * simulator-replayed counterexamples.
 *
 * Both directions of the acceptance criterion:
 *  - every legitimate kernel-builder configuration explores to the
 *    depth bound with zero violations (warnings are advisory);
 *  - every attack scenario's prepared image yields at least one
 *    violation whose counterexample trace the Machine simulator
 *    confirms step by step.
 * Plus reachability-only negatives the single-configuration verifier
 * cannot express: cross-domain masked-write composition, corrupt raw
 * dest_domain words, and trusted-stack storage outside trusted
 * memory.
 */

#include <gtest/gtest.h>

#include "attacks/attacks.hh"
#include "isa/riscv/opcodes.hh"
#include "isagrid/hpt.hh"
#include "isagrid/sgt.hh"
#include "kernel/kernel_builder.hh"
#include "kernel/layout.hh"
#include "modelcheck/modelcheck.hh"
#include "modelcheck/replay.hh"

using namespace isagrid;

namespace {

struct BuiltKernel
{
    std::unique_ptr<Machine> machine;
    KernelImage image;
};

BuiltKernel
buildKernel(bool x86, KernelConfig config)
{
    BuiltKernel built;
    built.machine = x86 ? Machine::gem5x86() : Machine::rocket();

    auto ua = x86 ? makeX86Asm(layout::userCodeBase)
                  : makeRiscvAsm(layout::userCodeBase);
    ua->li(ua->regArg(0), 0);
    ua->halt(ua->regArg(0));
    ua->loadInto(built.machine->mem());

    KernelBuilder builder(*built.machine, config);
    built.image = builder.build(layout::userCodeBase);
    return built;
}

McResult
check(Machine &machine, const std::vector<CodeRegion> &regions,
      const PolicySnapshot &snap, DomainId initial_domain,
      const McOptions &options)
{
    ModelChecker checker(machine.isa(), machine.mem(), snap, regions,
                         initial_domain, options);
    return checker.run();
}

const McViolation *
findCheck(const McResult &result, const std::string &check)
{
    for (const McViolation &f : result.findings)
        if (f.check == check)
            return &f;
    return nullptr;
}

/** Replay every Violation finding and assert the simulator agrees. */
void
expectAllReplay(Machine &machine, const McResult &result,
                const PolicySnapshot &snap, DomainId initial_domain)
{
    for (const McViolation &f : result.findings) {
        if (f.severity != Severity::Violation)
            continue;
        ReplayResult r = replayTrace(machine, f.trace, snap,
                                     initial_domain);
        EXPECT_TRUE(r.ok)
            << f.check << " at " << hexAddr(f.addr)
            << " did not replay: " << r.detail;
    }
}

constexpr std::size_t
idx(GridReg r)
{
    return static_cast<std::size_t>(r);
}

} // namespace

// ---------------------------------------------------------------------
// Legitimate configurations: the reachable space is violation-free
// ---------------------------------------------------------------------

struct CleanCase
{
    const char *name;
    bool x86;
    KernelMode mode;
    bool tstacks;
    Cycle timer;
};

class McClean : public ::testing::TestWithParam<CleanCase>
{
};

TEST_P(McClean, ExploresWithoutViolations)
{
    const CleanCase &c = GetParam();
    KernelConfig config;
    config.mode = c.mode;
    config.per_thread_tstack = c.tstacks;
    config.timer_interval = c.timer;
    BuiltKernel built = buildKernel(c.x86, config);

    PolicySnapshot snap =
        PolicySnapshot::fromPcu(built.machine->pcu());
    McOptions options;
    options.depth_bound = 4;
    McResult result = check(*built.machine, built.image.code_regions,
                            snap, 0, options);
    EXPECT_TRUE(result.clean()) << result.text();
    EXPECT_EQ(result.violations(), 0u);
    EXPECT_GE(result.stats.states, 1u);
    EXPECT_FALSE(result.stats.state_cap_hit);
    if (c.mode != KernelMode::Monolithic) {
        EXPECT_GT(result.stats.domains_scanned, 1u)
            << "decomposed configurations must reach their domains";
        EXPECT_EQ(result.stats.depth_reached, options.depth_bound);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, McClean,
    ::testing::Values(
        CleanCase{"rv_native", false, KernelMode::Monolithic, false, 0},
        CleanCase{"rv_decomposed", false, KernelMode::Decomposed, false,
                  0},
        CleanCase{"rv_nested", false, KernelMode::NestedMonitor, false,
                  0},
        CleanCase{"rv_tstacks_timer", false, KernelMode::Decomposed,
                  true, 10'000},
        CleanCase{"x86_native", true, KernelMode::Monolithic, false, 0},
        CleanCase{"x86_decomposed", true, KernelMode::Decomposed, false,
                  0},
        CleanCase{"x86_nested", true, KernelMode::NestedMonitor, false,
                  0},
        CleanCase{"x86_tstacks_timer", true, KernelMode::Decomposed,
                  true, 10'000}),
    [](const auto &info) { return info.param.name; });

// ---------------------------------------------------------------------
// Attack scenarios: flagged, and every counterexample replays
// ---------------------------------------------------------------------

class McAttacks : public ::testing::TestWithParam<bool>
{
};

TEST_P(McAttacks, EveryScenarioYieldsReplayedCounterexample)
{
    bool x86 = GetParam();
    for (const AttackScenario &s : attackScenarios(x86)) {
        PreparedAttack prepared = prepareAttack(s, x86, true);
        PolicySnapshot snap =
            PolicySnapshot::fromPcu(prepared.machine->pcu());
        McOptions options;
        options.depth_bound = 2;
        McResult result =
            check(*prepared.machine, prepared.image.code_regions, snap,
                  prepared.payload_domain, options);
        EXPECT_GE(result.violations(), 1u)
            << s.name << " not flagged:\n" << result.text();
        expectAllReplay(*prepared.machine, result, snap,
                        prepared.payload_domain);
    }
}

INSTANTIATE_TEST_SUITE_P(Isas, McAttacks, ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? "x86" : "riscv";
                         });

TEST(McAttacks, RopStyleReturnIsAnUnderflowCounterexample)
{
    for (const AttackScenario &s : attackScenarios(false)) {
        if (s.name.find("hcrets") == std::string::npos)
            continue;
        PreparedAttack prepared = prepareAttack(s, false, true);
        PolicySnapshot snap =
            PolicySnapshot::fromPcu(prepared.machine->pcu());
        McResult result =
            check(*prepared.machine, prepared.image.code_regions, snap,
                  prepared.payload_domain, {});
        const McViolation *f = findCheck(result, "mc-ret-underflow");
        ASSERT_NE(f, nullptr) << result.text();
        ASSERT_FALSE(f->trace.empty());
        EXPECT_EQ(f->trace.back().expect,
                  FaultType::TrustedStackFault);
    }
}

// ---------------------------------------------------------------------
// Write-composition escalation: only reachability analysis sees it
// ---------------------------------------------------------------------

TEST(McComposition, CrossDomainMaskedWritesEscalate)
{
    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    BuiltKernel built = buildKernel(false, config);
    Machine &m = *built.machine;
    PolicySnapshot snap = PolicySnapshot::fromPcu(m.pcu());

    ASSERT_FALSE(built.image.service_domains.empty());
    DomainId da = built.image.mm_domain;
    DomainId db = built.image.service_domains.begin()->second;
    ASSERT_NE(da, db);

    // Misconfigure: grant the two domains *disjoint* sstatus write
    // masks (and make sure neither holds the full write bit). Each
    // individual masked write is policy-legal; the chain flips a bit
    // set no single mask covers.
    const IsaModel &isa = m.isa();
    HptLayout hpt(isa.numInstTypes(), isa.numControlledCsrs(),
                  isa.numMaskableCsrs());
    CsrIndex mi = isa.csrMaskIndex(riscv::CSR_SSTATUS);
    CsrIndex bi = isa.csrBitmapIndex(riscv::CSR_SSTATUS);
    ASSERT_NE(mi, invalidCsrIndex);
    ASSERT_NE(bi, invalidCsrIndex);
    Addr mask_base = snap.reg(GridReg::CsrBitMask);
    Addr cap_base = snap.reg(GridReg::CsrCap);
    m.mem().write64(hpt.maskAddr(mask_base, da, mi), RegVal{1} << 62);
    m.mem().write64(hpt.maskAddr(mask_base, db, mi), RegVal{1} << 61);
    for (DomainId d : {da, db}) {
        Addr word = hpt.regWordAddr(cap_base, d, hpt.regGroupOf(bi));
        m.mem().write64(word, m.mem().read64(word) &
                                  ~(RegVal{1} << hpt.regWriteBit(bi)));
    }

    McOptions options;
    options.depth_bound = 6;
    McResult result =
        check(m, built.image.code_regions, snap, 0, options);
    const McViolation *f = findCheck(result, "mc-mask-composition");
    ASSERT_NE(f, nullptr) << result.text();

    ReplayResult r = replayTrace(m, f->trace, snap, 0);
    EXPECT_TRUE(r.ok) << r.detail;
}

// ---------------------------------------------------------------------
// Corrupt raw dest_domain words (the satellite of sgt.hh's contract)
// ---------------------------------------------------------------------

TEST(McGates, CorruptDestDomainWordFlaggedAndReplays)
{
    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    BuiltKernel built = buildKernel(false, config);
    Machine &m = *built.machine;
    PolicySnapshot snap = PolicySnapshot::fromPcu(m.pcu());

    Addr table = snap.reg(GridReg::GateAddr);
    SgtEntry entry = sgtRead(m.mem(), table, 0);
    entry.dest_domain = DomainId{1} << 40;
    sgtWrite(m.mem(), table, 0, entry);

    McOptions options;
    options.depth_bound = 2;
    McResult result =
        check(m, built.image.code_regions, snap, 0, options);
    const McViolation *f = findCheck(result, "mc-gate-dest-domain");
    ASSERT_NE(f, nullptr) << result.text();
    ASSERT_FALSE(f->trace.empty());
    EXPECT_EQ(f->trace.back().expect, FaultType::GateFault);

    // The PCU must fault cleanly on the raw out-of-range word — this
    // replay would crash (or mis-tag the privilege caches) if the
    // range validation regressed.
    ReplayResult r = replayTrace(m, f->trace, snap, 0);
    EXPECT_TRUE(r.ok) << r.detail;
}

// ---------------------------------------------------------------------
// Trusted-stack storage outside trusted memory is forgeable
// ---------------------------------------------------------------------

TEST(McStack, StackOutsideTrustedMemoryForgeable)
{
    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    BuiltKernel built = buildKernel(false, config);
    Machine &m = *built.machine;
    PolicySnapshot snap = PolicySnapshot::fromPcu(m.pcu());

    // Relocate the trusted stack to ordinary guest memory.
    Addr fake = 0x70000;
    snap.regs[idx(GridReg::Hcsb)] = fake;
    snap.regs[idx(GridReg::Hcsp)] = fake;
    snap.regs[idx(GridReg::Hcsl)] = fake + 0x100;

    McOptions options;
    options.depth_bound = 4;
    McResult result =
        check(m, built.image.code_regions, snap, 0, options);
    const McViolation *f = findCheck(result, "mc-stack-forge");
    ASSERT_NE(f, nullptr) << result.text();

    // The trace overwrites the topmost frame with ordinary stores and
    // hcrets into a domain that never called — confirmed live.
    ReplayResult r = replayTrace(m, f->trace, snap, 0);
    EXPECT_TRUE(r.ok) << r.detail;
}

// ---------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------

TEST(McReport, JsonCarriesFindingsAndStats)
{
    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    BuiltKernel built = buildKernel(false, config);
    PolicySnapshot snap =
        PolicySnapshot::fromPcu(built.machine->pcu());
    McOptions options;
    options.depth_bound = 2;
    McResult result = check(*built.machine, built.image.code_regions,
                            snap, 0, options);
    std::string json = result.json();
    EXPECT_NE(json.find("\"violations\":0"), std::string::npos);
    EXPECT_NE(json.find("\"stats\""), std::string::npos);
    EXPECT_NE(json.find("\"findings\""), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}
