/**
 * @file
 * Logging-facility tests: sink capture and restore, threshold
 * filtering (a warn() below the threshold emits nothing), and message
 * formatting through the printf-style front ends.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"

using namespace isagrid;

namespace {

// setLogSink takes a plain function pointer, so captures go through
// file-scope state; the fixture resets it around every test.
std::vector<std::pair<LogLevel, std::string>> captured;

void
captureSink(LogLevel level, const std::string &msg)
{
    captured.emplace_back(level, msg);
}

class LoggingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        captured.clear();
        previous = setLogSink(captureSink);
        setLogThreshold(LogLevel::Inform);
    }

    void
    TearDown() override
    {
        setLogSink(previous);
        setLogThreshold(LogLevel::Warn);
    }

    LogSink previous = nullptr;
};

} // namespace

TEST_F(LoggingTest, SinkCapturesFormattedMessages)
{
    warn("cache %s has %d entries", "sgt", 8);
    inform("booting domain %u", 3u);

    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second, "cache sgt has 8 entries");
    EXPECT_EQ(captured[1].first, LogLevel::Inform);
    EXPECT_EQ(captured[1].second, "booting domain 3");
}

TEST_F(LoggingTest, ThresholdSuppressesLowerLevels)
{
    setLogThreshold(LogLevel::Warn);
    inform("below threshold: emits nothing");
    EXPECT_TRUE(captured.empty());

    warn("at threshold: emits");
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);

    setLogThreshold(LogLevel::Fatal);
    warn("below the raised threshold: emits nothing");
    inform("also nothing");
    EXPECT_EQ(captured.size(), 1u);
}

TEST_F(LoggingTest, SetLogSinkReturnsThePreviousSink)
{
    // SetUp installed captureSink; a second swap must hand it back.
    LogSink old = setLogSink(nullptr);
    EXPECT_EQ(old, &captureSink);

    // After swapping in null (the default stderr sink), the capture
    // buffer no longer receives messages.
    warn("goes to the default sink");
    EXPECT_TRUE(captured.empty());

    setLogSink(captureSink);
    warn("captured again");
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].second, "captured again");
}
