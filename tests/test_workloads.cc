/**
 * @file
 * Workload generator tests: determinism, ROI extraction, profile
 * character (instruction mixes really differ) and the lmbench suite's
 * mark protocol.
 */

#include <gtest/gtest.h>

#include "kernel/kernel_builder.hh"
#include "workloads/apps.hh"
#include "workloads/lmbench.hh"

using namespace isagrid;

namespace {

RunResult
runProfile(Machine &machine, const AppProfile &profile,
           KernelMode mode = KernelMode::Monolithic)
{
    Addr entry = buildApp(machine, profile);
    KernelConfig config;
    config.mode = mode;
    KernelBuilder builder(machine, config);
    KernelImage image = builder.build(entry);
    return machine.run(image.boot_pc, 100'000'000);
}

} // namespace

TEST(Workloads, AppRunsAreBitReproducible)
{
    AppProfile profile = AppProfile::gzip();
    profile.total_blocks = 800;
    auto m1 = Machine::rocket();
    auto m2 = Machine::rocket();
    RunResult r1 = runProfile(*m1, profile);
    RunResult r2 = runProfile(*m2, profile);
    ASSERT_EQ(r1.reason, StopReason::Halted);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_EQ(appRoiCycles(m1->core()), appRoiCycles(m2->core()));
}

TEST(Workloads, SeedChangesTheProgram)
{
    AppProfile a = AppProfile::gzip();
    a.total_blocks = 800;
    AppProfile b = a;
    b.seed = 0xfeed;
    auto m1 = Machine::rocket();
    auto m2 = Machine::rocket();
    RunResult r1 = runProfile(*m1, a);
    RunResult r2 = runProfile(*m2, b);
    EXPECT_NE(r1.cycles, r2.cycles);
}

TEST(Workloads, ProfilesHaveDistinctCharacter)
{
    // mbedtls is compute-bound: highest cycles-per-memory-access;
    // gzip/tar are memory-streaming.
    std::map<std::string, double> loads_per_inst;
    for (AppProfile profile : AppProfile::all()) {
        profile.total_blocks = 800;
        auto m = Machine::rocket();
        RunResult r = runProfile(*m, profile);
        ASSERT_EQ(r.reason, StopReason::Halted) << profile.name;
        double loads = m->core().stats().lookup("core.loads") +
                       m->core().stats().lookup("core.stores");
        loads_per_inst[profile.name] = loads / double(r.instructions);
    }
    EXPECT_LT(loads_per_inst["mbedtls"], loads_per_inst["gzip"]);
    EXPECT_LT(loads_per_inst["mbedtls"], loads_per_inst["tar"]);
}

TEST(Workloads, SyscallDensityFollowsProfile)
{
    AppProfile chatty = AppProfile::sqlite();
    AppProfile quiet = AppProfile::mbedtls();
    chatty.total_blocks = quiet.total_blocks = 1600;
    auto m1 = Machine::rocket();
    auto m2 = Machine::rocket();
    runProfile(*m1, chatty);
    runProfile(*m2, quiet);
    double traps1 = m1->core().stats().lookup("core.traps");
    double traps2 = m2->core().stats().lookup("core.traps");
    EXPECT_GT(traps1, 4 * traps2);
}

TEST(Workloads, RoiExcludesBootAndTeardown)
{
    AppProfile profile = AppProfile::gzip();
    profile.total_blocks = 800;
    auto m = Machine::rocket();
    RunResult r = runProfile(*m, profile);
    EXPECT_LT(appRoiCycles(m->core()), r.cycles);
    EXPECT_LT(appRoiInstructions(m->core()), r.instructions);
    EXPECT_GT(appRoiInstructions(m->core()),
              r.instructions * 9 / 10);
}

TEST(Workloads, WorkingSetMustBePowerOfTwo)
{
    AppProfile profile = AppProfile::gzip();
    profile.working_set = 100000;
    auto m = Machine::rocket();
    EXPECT_DEATH(buildApp(*m, profile), "");
}

TEST(Lmbench, AllOpsProduceMarks)
{
    const unsigned iters = 5;
    auto m = Machine::rocket();
    Addr entry = buildLmbenchSuite(*m, iters);
    KernelConfig config;
    KernelBuilder builder(*m, config);
    KernelImage image = builder.build(entry);
    RunResult r = m->run(image.boot_pc, 50'000'000);
    ASSERT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(m->core().marks().size(), 2 * numLmbenchOps);
    auto results = extractLmbenchResults(m->core(), iters);
    ASSERT_EQ(results.size(), numLmbenchOps);
}

TEST(Lmbench, PerOpCostScalesWithIterations)
{
    auto run = [](unsigned iters) {
        auto m = Machine::rocket();
        Addr entry = buildLmbenchSuite(*m, iters);
        KernelConfig config;
        KernelBuilder builder(*m, config);
        KernelImage image = builder.build(entry);
        RunResult r = m->run(image.boot_pc, 100'000'000);
        EXPECT_EQ(r.reason, StopReason::Halted);
        return extractLmbenchResults(m->core(), iters);
    };
    auto few = run(50);
    auto many = run(200);
    // Per-op cost converges: the two estimates agree within 20%.
    for (unsigned op = 0; op < numLmbenchOps; ++op) {
        EXPECT_NEAR(few[op].cycles_per_op / many[op].cycles_per_op,
                    1.0, 0.25)
            << lmbenchOpName(LmbenchOp(op));
    }
}

TEST(Lmbench, PipeRoundTripDeliversData)
{
    // The pipe op writes then reads; verify kernel state advanced.
    const unsigned iters = 8;
    auto m = Machine::rocket();
    Addr entry = buildLmbenchSuite(*m, iters);
    KernelConfig config;
    KernelBuilder builder(*m, config);
    KernelImage image = builder.build(entry);
    RunResult r = m->run(image.boot_pc, 50'000'000);
    ASSERT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(m->mem().read64(layout::pipeHead), iters);
    EXPECT_EQ(m->mem().read64(layout::pipeTail), iters);
}

TEST(Lmbench, OpNamesAreUnique)
{
    std::set<std::string> names;
    for (unsigned op = 0; op < numLmbenchOps; ++op)
        names.insert(lmbenchOpName(LmbenchOp(op)));
    EXPECT_EQ(names.size(), numLmbenchOps);
}
