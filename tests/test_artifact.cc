/**
 * @file
 * FuzzArtifact round-trip and sparse-memory semantics.
 *
 * The fuzzer's whole determinism story rests on the artifact being a
 * canonical value: serialize∘parse must be the identity on bytes,
 * capture∘restore must be the identity on configurations, and the
 * sparse read/write helpers must keep the chunk list sorted and
 * coalesced no matter the write order.
 */

#include <gtest/gtest.h>

#include "fuzz/artifact.hh"
#include "fuzz/fuzz.hh"

using namespace isagrid;

namespace {

FuzzArtifact
firstSeed(bool x86)
{
    std::vector<FuzzArtifact> seeds = builtinSeeds(x86);
    EXPECT_FALSE(seeds.empty());
    return seeds.front();
}

} // namespace

class ArtifactBothIsas : public ::testing::TestWithParam<bool>
{
};

INSTANTIATE_TEST_SUITE_P(Isas, ArtifactBothIsas,
                         ::testing::Values(false, true),
                         [](const auto &info) {
                             return info.param ? "x86" : "riscv";
                         });

TEST_P(ArtifactBothIsas, SerializeParseRoundTripIsIdentity)
{
    for (const FuzzArtifact &seed : builtinSeeds(GetParam())) {
        std::string text = seed.serialize();
        FuzzArtifact parsed;
        std::string error;
        ASSERT_TRUE(FuzzArtifact::parse(text, parsed, error))
            << seed.name << ": " << error;
        EXPECT_EQ(parsed.serialize(), text) << seed.name;
        EXPECT_EQ(parsed.name, seed.name);
        EXPECT_EQ(parsed.x86, seed.x86);
        EXPECT_EQ(parsed.start_pc, seed.start_pc);
        EXPECT_EQ(parsed.start_domain, seed.start_domain);
        EXPECT_EQ(parsed.entries, seed.entries);
        EXPECT_EQ(parsed.chunks, seed.chunks);
        for (std::uint8_t r = 0; r < numGridRegs; ++r) {
            EXPECT_EQ(parsed.snapshot.regs[r], seed.snapshot.regs[r])
                << seed.name << " grid reg " << unsigned(r);
        }
    }
}

TEST_P(ArtifactBothIsas, CaptureRestoreIsIdentity)
{
    FuzzArtifact seed = firstSeed(GetParam());
    std::unique_ptr<Machine> machine = seed.restore();
    FuzzArtifact again =
        captureArtifact(*machine, seed.x86, seed.name, seed.start_pc,
                        seed.start_domain, seed.entries, seed.regions);
    EXPECT_EQ(again.serialize(), seed.serialize());
}

TEST_P(ArtifactBothIsas, RestoredMachinesRunIdentically)
{
    FuzzArtifact seed = firstSeed(GetParam());
    std::unique_ptr<Machine> a = seed.restore();
    std::unique_ptr<Machine> b = seed.restore();
    seed.position(*a);
    seed.position(*b);
    RunResult ra = a->core().run(5000);
    RunResult rb = b->core().run(5000);
    EXPECT_EQ(ra.reason, rb.reason);
    EXPECT_EQ(ra.halt_code, rb.halt_code);
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_EQ(ra.fault, rb.fault);
}

TEST(Artifact, SparseWritesStaySortedAndCoalesced)
{
    FuzzArtifact a;

    // Reads from gaps are zero.
    EXPECT_EQ(a.read64(0x1000), 0u);
    EXPECT_EQ(a.read8(0x1000), 0u);

    // Writing zero into a gap stays a no-op (canonical form keeps
    // untouched memory implicit).
    a.write8(0x1000, 0);
    EXPECT_TRUE(a.chunks.empty());

    // Out-of-order writes land sorted.
    a.write64(0x2000, 0x1122334455667788ull);
    a.write64(0x1000, 0xaabbccddeeff1122ull);
    ASSERT_EQ(a.chunks.size(), 2u);
    EXPECT_EQ(a.chunks[0].base, 0x1000u);
    EXPECT_EQ(a.chunks[1].base, 0x2000u);
    EXPECT_EQ(a.read64(0x1000), 0xaabbccddeeff1122ull);
    EXPECT_EQ(a.read64(0x2000), 0x1122334455667788ull);

    // Filling the bytes in between coalesces into one chunk.
    for (Addr addr = 0x1008; addr < 0x2000; addr += 8)
        a.write64(addr, 0x0101010101010101ull);
    ASSERT_EQ(a.chunks.size(), 1u);
    EXPECT_EQ(a.chunks[0].base, 0x1000u);
    EXPECT_EQ(a.chunks[0].bytes.size(), 0x1008u);

    // Unaligned word access straddling a chunk boundary.
    a.write64(0x2004, 0x0807060504030201ull);
    EXPECT_EQ(a.read64(0x2004), 0x0807060504030201ull);
}

TEST(Artifact, ParseRejectsMalformedInput)
{
    FuzzArtifact seed = firstSeed(false);
    std::string good = seed.serialize();
    FuzzArtifact out;
    std::string error;

    EXPECT_FALSE(FuzzArtifact::parse("not an artifact", out, error));
    EXPECT_FALSE(error.empty());

    // Truncation (missing "end") must be detected: a partially
    // written corpus file must never load as a shorter artifact.
    std::string truncated = good.substr(0, good.size() / 2);
    EXPECT_FALSE(FuzzArtifact::parse(truncated, out, error));

    std::string no_end = good;
    auto pos = no_end.rfind("end\n");
    ASSERT_NE(pos, std::string::npos);
    no_end.erase(pos);
    EXPECT_FALSE(FuzzArtifact::parse(no_end, out, error));

    // Garbage after a valid line.
    std::string garbage = good;
    garbage.insert(garbage.find('\n') + 1, "bogus line\n");
    EXPECT_FALSE(FuzzArtifact::parse(garbage, out, error));
}
