/**
 * @file
 * Table 1 reproduction: every ISA-abuse-based attack succeeds natively
 * and is blocked by ISA-Grid with the right hardware exception.
 */

#include <gtest/gtest.h>

#include "attacks/attacks.hh"

using namespace isagrid;

class Attacks : public ::testing::TestWithParam<std::tuple<bool, int>>
{
};

TEST_P(Attacks, BlockedWithIsaGridSucceedsNatively)
{
    bool is_x86 = std::get<0>(GetParam());
    int index = std::get<1>(GetParam());
    auto scenarios = attackScenarios(is_x86);
    if (index >= int(scenarios.size()))
        GTEST_SKIP() << "no such scenario for this ISA";
    const AttackScenario &s = scenarios[index];

    AttackOutcome guarded = runAttack(s, is_x86, true);
    EXPECT_TRUE(guarded.blocked)
        << s.name << ": not blocked under ISA-Grid";
    EXPECT_FALSE(guarded.reached_halt) << s.name;

    if (!s.requires_isagrid) {
        AttackOutcome native = runAttack(s, is_x86, false);
        EXPECT_TRUE(native.reached_halt)
            << s.name << ": prerequisite failed natively (fault "
            << faultName(native.fault) << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, Attacks,
    ::testing::Combine(::testing::Bool(), ::testing::Range(0, 17)),
    [](const auto &info) {
        bool is_x86 = std::get<0>(info.param);
        int index = std::get<1>(info.param);
        auto scenarios = attackScenarios(is_x86);
        std::string name = is_x86 ? "x86_" : "riscv_";
        if (index < int(scenarios.size())) {
            for (char c : scenarios[index].name) {
                name += std::isalnum(static_cast<unsigned char>(c))
                            ? c : '_';
            }
        } else {
            name += "skip" + std::to_string(index);
        }
        return name;
    });

TEST(AttackFaults, ExpectedFaultTypes)
{
    // Spot-check the exception classes of representative rows.
    auto x86_scenarios = attackScenarios(true);
    auto find = [&](const std::string &needle) -> const AttackScenario & {
        for (const auto &s : x86_scenarios)
            if (s.name.find(needle) != std::string::npos)
                return s;
        ADD_FAILURE() << needle << " not found";
        return x86_scenarios.front();
    };

    // Voltage attack: register bitmap rejection.
    EXPECT_EQ(runAttack(find("V0LTpwn"), true, true).fault,
              FaultType::CsrPrivilege);
    // CR0.CD: bit-mask equation rejection.
    EXPECT_EQ(runAttack(find("Stealthy"), true, true).fault,
              FaultType::CsrMaskViolation);
    // Hidden out: instruction bitmap rejection.
    EXPECT_EQ(runAttack(find("Unintended"), true, true).fault,
              FaultType::InstPrivilege);
    // Forged gate: gate property (i).
    EXPECT_EQ(runAttack(find("Forged"), true, true).fault,
              FaultType::GateFault);
    // hcrets without a call: trusted-stack bounds.
    EXPECT_EQ(runAttack(find("hcrets"), true, true).fault,
              FaultType::TrustedStackFault);
}
