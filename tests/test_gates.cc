/**
 * @file
 * Unforgeable domain switching tests: gate properties (i)-(iv) of
 * Section 4.2, extended gates with the trusted stack, and the
 * domain-0 rules of Section 4.4.
 */

#include <gtest/gtest.h>

#include "isa/riscv/riscv_isa.hh"
#include "isagrid/domain_manager.hh"
#include "isagrid/pcu.hh"
#include "isagrid/sgt.hh"
#include "mem/phys_mem.hh"

using namespace isagrid;

namespace {

struct GateEnv
{
    GateEnv() : mem(16 * 1024 * 1024), pcu(isa, mem, PcuConfig::config8E()),
                dm(pcu, mem, dmConfig())
    {
        d1 = dm.createBaselineDomain();
        d2 = dm.createBaselineDomain();
    }

    static DomainManagerConfig
    dmConfig()
    {
        DomainManagerConfig c;
        c.tmem_base = 8 * 1024 * 1024;
        c.tmem_size = 1024 * 1024;
        return c;
    }

    riscv::RiscvIsa isa;
    PhysMem mem;
    PrivilegeCheckUnit pcu;
    DomainManager dm;
    DomainId d1, d2;
};

} // namespace

TEST(Gates, LegalCallSwitchesDomainAndRedirects)
{
    GateEnv env;
    GateId g = env.dm.registerGate(0x1000, 0x2000, env.d1);
    env.dm.publish();

    GateOutcome out = env.pcu.gateCall(g, 0x1000, false);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.dest_pc, 0x2000u);
    EXPECT_EQ(out.dest_domain, env.d1);
    EXPECT_EQ(env.pcu.currentDomain(), env.d1);
    EXPECT_EQ(env.pcu.previousDomain(), 0u);
    EXPECT_EQ(env.pcu.switches(), 1u);
}

TEST(Gates, PropertyI_OnlyFiresAtRegisteredAddress)
{
    GateEnv env;
    GateId g = env.dm.registerGate(0x1000, 0x2000, env.d1);
    env.dm.publish();

    GateOutcome out = env.pcu.gateCall(g, 0x1004, false);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.fault, FaultType::GateFault);
    EXPECT_EQ(env.pcu.currentDomain(), 0u) << "no switch on fault";
}

TEST(Gates, PropertyII_III_DestinationComesFromSgtOnly)
{
    GateEnv env;
    GateId g = env.dm.registerGate(0x1000, 0x2000, env.d1);
    env.dm.publish();
    // The caller cannot influence destination pc or domain: they are
    // whatever was registered, regardless of machine state.
    env.pcu.setGridReg(GridReg::Domain, env.d2);
    GateOutcome out = env.pcu.gateCall(g, 0x1000, false);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.dest_pc, 0x2000u);
    EXPECT_EQ(out.dest_domain, env.d1);
    EXPECT_EQ(env.pcu.previousDomain(), env.d2);
}

TEST(Gates, PropertyIV_UnregisteredGateIdFaults)
{
    GateEnv env;
    env.dm.registerGate(0x1000, 0x2000, env.d1);
    env.dm.publish();
    GateOutcome out = env.pcu.gateCall(57, 0x1000, false);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.fault, FaultType::GateFault);
}

TEST(Gates, GateNrBoundsChecksEvenWithStaleCache)
{
    GateEnv env;
    GateId g = env.dm.registerGate(0x1000, 0x2000, env.d1);
    env.dm.publish();
    env.pcu.gateCall(g, 0x1000, false); // warm the SGT cache
    // Lower gate-nr (as a domain-0 reconfiguration would).
    env.pcu.setGridReg(GridReg::GateNr, 0);
    GateOutcome out = env.pcu.gateCall(g, 0x1000, false);
    EXPECT_FALSE(out.ok) << "bounds check precedes the cache lookup";
}

TEST(Gates, ExtendedCallPushesAndReturnPops)
{
    GateEnv env;
    GateId enter = env.dm.registerGate(0x1000, 0x2000, env.d1);
    GateId call = env.dm.registerGate(0x2100, 0x3000, env.d2);
    env.dm.publish();

    // Enter d1 through a plain gate, then d1 -> d2 extended call.
    ASSERT_TRUE(env.pcu.gateCall(enter, 0x1000, false).ok);
    RegVal sp0 = env.pcu.gridReg(GridReg::Hcsp);
    GateOutcome out = env.pcu.gateCall(call, 0x2100, true, 0x2104);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(env.pcu.currentDomain(), env.d2);
    EXPECT_EQ(env.pcu.gridReg(GridReg::Hcsp), sp0 + 16);
    // The trusted stack holds (return pc, source domain).
    EXPECT_EQ(env.mem.read64(sp0), 0x2104u);
    EXPECT_EQ(env.mem.read64(sp0 + 8), env.d1);

    GateOutcome ret = env.pcu.gateReturn();
    ASSERT_TRUE(ret.ok);
    EXPECT_EQ(ret.dest_pc, 0x2104u);
    EXPECT_EQ(env.pcu.currentDomain(), env.d1);
    EXPECT_EQ(env.pcu.gridReg(GridReg::Hcsp), sp0);
}

TEST(Gates, NestedExtendedCallsUnwindInOrder)
{
    GateEnv env;
    DomainId d3 = env.dm.createBaselineDomain();
    GateId enter = env.dm.registerGate(0x1000, 0x2000, env.d1);
    GateId g12 = env.dm.registerGate(0x2100, 0x3000, env.d2);
    GateId g23 = env.dm.registerGate(0x3100, 0x4000, d3);
    env.dm.publish();

    ASSERT_TRUE(env.pcu.gateCall(enter, 0x1000, false).ok);
    ASSERT_TRUE(env.pcu.gateCall(g12, 0x2100, true, 0x2104).ok);
    ASSERT_TRUE(env.pcu.gateCall(g23, 0x3100, true, 0x3104).ok);
    EXPECT_EQ(env.pcu.currentDomain(), d3);

    GateOutcome r1 = env.pcu.gateReturn();
    EXPECT_EQ(r1.dest_pc, 0x3104u);
    EXPECT_EQ(env.pcu.currentDomain(), env.d2);
    GateOutcome r2 = env.pcu.gateReturn();
    EXPECT_EQ(r2.dest_pc, 0x2104u);
    EXPECT_EQ(env.pcu.currentDomain(), env.d1);
}

TEST(Gates, ReturnToDomain0IsForbidden)
{
    GateEnv env;
    GateId call = env.dm.registerGate(0x1000, 0x2000, env.d1);
    env.dm.publish();
    // Extended call *from domain-0* pushes source 0; the return must
    // then refuse (Section 4.4).
    ASSERT_TRUE(env.pcu.gateCall(call, 0x1000, true, 0x1004).ok);
    GateOutcome ret = env.pcu.gateReturn();
    EXPECT_FALSE(ret.ok);
    EXPECT_EQ(ret.fault, FaultType::GateFault);
}

TEST(Gates, StackUnderflowFaults)
{
    GateEnv env;
    env.dm.publish();
    GateOutcome ret = env.pcu.gateReturn();
    EXPECT_FALSE(ret.ok);
    EXPECT_EQ(ret.fault, FaultType::TrustedStackFault);
}

TEST(Gates, StackOverflowFaults)
{
    GateEnv env;
    GateId enter = env.dm.registerGate(0x1000, 0x2000, env.d1);
    GateId g = env.dm.registerGate(0x2100, 0x3000, env.d2);
    env.dm.publish();
    ASSERT_TRUE(env.pcu.gateCall(enter, 0x1000, false).ok);
    // Shrink the stack to 2 frames.
    RegVal base = env.pcu.gridReg(GridReg::Hcsb);
    env.pcu.setGridReg(GridReg::Hcsl, base + 32);
    ASSERT_TRUE(env.pcu.gateCall(g, 0x2100, true, 0).ok);
    ASSERT_TRUE(env.pcu.gateCall(g, 0x2100, true, 0).ok);
    GateOutcome out = env.pcu.gateCall(g, 0x2100, true, 0);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.fault, FaultType::TrustedStackFault);
}

TEST(Gates, UpdateGateRepoints)
{
    GateEnv env;
    GateId g = env.dm.registerGate(0x1000, 0x2000, env.d1);
    env.dm.publish();
    env.pcu.gateCall(g, 0x1000, false); // warm cache
    env.dm.updateGate(g, 0x5000, 0x6000, env.d2);
    env.dm.publish(); // flush stale SGT cache
    EXPECT_FALSE(env.pcu.gateCall(g, 0x1000, false).ok);
    GateOutcome out = env.pcu.gateCall(g, 0x5000, false);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.dest_pc, 0x6000u);
    EXPECT_EQ(out.dest_domain, env.d2);
}

TEST(Gates, PdomainTracksEverySwitch)
{
    GateEnv env;
    GateId a = env.dm.registerGate(0x1000, 0x2000, env.d1);
    GateId b = env.dm.registerGate(0x2000, 0x3000, env.d2);
    env.dm.publish();
    env.pcu.gateCall(a, 0x1000, false);
    env.pcu.gateCall(b, 0x2000, false);
    EXPECT_EQ(env.pcu.currentDomain(), env.d2);
    EXPECT_EQ(env.pcu.previousDomain(), env.d1);
}

TEST(Gates, ResetReturnsToDomain0)
{
    GateEnv env;
    GateId g = env.dm.registerGate(0x1000, 0x2000, env.d1);
    env.dm.publish();
    env.pcu.gateCall(g, 0x1000, false);
    ASSERT_EQ(env.pcu.currentDomain(), env.d1);
    env.pcu.reset();
    EXPECT_EQ(env.pcu.currentDomain(), 0u);
}

TEST(Gates, SgtCachePressureWithManyGates)
{
    GateEnv env;
    // Register far more gates than the SGT cache holds; every gate
    // must still resolve correctly under LRU churn.
    constexpr unsigned numGates = 64;
    std::vector<GateId> ids;
    for (unsigned i = 0; i < numGates; ++i) {
        ids.push_back(env.dm.registerGate(
            0x10000 + i * 0x100, 0x20000 + i * 0x100,
            (i % 2) ? env.d1 : env.d2));
    }
    env.dm.publish();
    for (int round = 0; round < 3; ++round) {
        for (unsigned i = 0; i < numGates; ++i) {
            GateOutcome out =
                env.pcu.gateCall(ids[i], 0x10000 + i * 0x100, false);
            ASSERT_TRUE(out.ok) << "gate " << i;
            ASSERT_EQ(out.dest_pc, 0x20000u + i * 0x100);
        }
    }
    // 64 gates > 8 entries: the cache must have evicted and refilled.
    EXPECT_GT(env.pcu.sgtCache().misses(), 64u);
    EXPECT_EQ(env.pcu.switches(), 3u * numGates);
}

TEST(Gates, WrongAddressNeverCorruptsCache)
{
    GateEnv env;
    GateId g = env.dm.registerGate(0x1000, 0x2000, env.d1);
    env.dm.publish();
    // A failing call (wrong pc) caches the entry; the next legal call
    // must still validate the *registered* address, not the cached
    // failure.
    EXPECT_FALSE(env.pcu.gateCall(g, 0xbad0, false).ok);
    EXPECT_TRUE(env.pcu.gateCall(g, 0x1000, false).ok);
    EXPECT_FALSE(env.pcu.gateCall(g, 0xbad0, false).ok);
}

// ---------------------------------------------------------------------
// Raw dest_domain words (the 64-bit SGT field can hold anything)
// ---------------------------------------------------------------------

TEST(Gates, CorruptDestDomainWordFaultsInsteadOfSwitching)
{
    GateEnv env;
    GateId g = env.dm.registerGate(0x1000, 0x2000, env.d1);
    env.dm.publish();
    // Corrupt the table in guest memory: the raw dest_domain word now
    // holds a value far outside [0, domain-nr). The PCU must raise a
    // clean gate fault, not switch into (or tag caches with) a domain
    // that does not exist.
    SgtEntry bad{0x1000, 0x2000, DomainId{1} << 40};
    sgtWrite(env.mem, env.pcu.gridReg(GridReg::GateAddr), g, bad);
    GateOutcome out = env.pcu.gateCall(g, 0x1000, false);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.fault, FaultType::GateFault);
    EXPECT_EQ(env.pcu.currentDomain(), 0u) << "no switch on fault";
}

TEST(Gates, ForgedReturnDomainWordFaultsInsteadOfSwitching)
{
    GateEnv env;
    env.dm.publish();
    // Forge a trusted-stack frame whose source-domain word is out of
    // range, as direct stack corruption would produce.
    RegVal base = env.pcu.gridReg(GridReg::Hcsb);
    env.mem.write64(base, 0x2004);
    env.mem.write64(base + 8, RegVal{1} << 40);
    env.pcu.setGridReg(GridReg::Hcsp, base + 16);
    GateOutcome out = env.pcu.gateReturn();
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.fault, FaultType::GateFault);
}
