/**
 * @file
 * Unit tests for the simulation framework: logging, statistics and the
 * deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

using namespace isagrid;

namespace {

std::vector<std::pair<LogLevel, std::string>> captured;

void
captureSink(LogLevel level, const std::string &msg)
{
    captured.emplace_back(level, msg);
}

class LoggingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        captured.clear();
        old = setLogSink(captureSink);
        setLogThreshold(LogLevel::Inform);
    }

    void
    TearDown() override
    {
        setLogSink(old);
        setLogThreshold(LogLevel::Warn);
    }

    LogSink old = nullptr;
};

} // namespace

TEST_F(LoggingTest, WarnFormatsArguments)
{
    warn("value is %d and %s", 42, "text");
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second, "value is 42 and text");
}

TEST_F(LoggingTest, InformRespectsThreshold)
{
    setLogThreshold(LogLevel::Warn);
    inform("should be suppressed");
    EXPECT_TRUE(captured.empty());
    warn("should appear");
    EXPECT_EQ(captured.size(), 1u);
}

TEST_F(LoggingTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "");
}

TEST_F(LoggingTest, AssertMacroFiresOnFalse)
{
    EXPECT_DEATH(ISAGRID_ASSERT(1 == 2, "context %d", 5), "");
}

TEST_F(LoggingTest, AssertMacroPassesOnTrue)
{
    ISAGRID_ASSERT(1 == 1, "never printed%s", "");
    EXPECT_TRUE(captured.empty());
}

TEST(Stats, CounterArithmetic)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 9;
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, DumpContainsDottedNames)
{
    StatGroup group("top");
    Counter c;
    c += 3;
    group.addCounter("hits", c, "some hits");
    StatGroup child("sub");
    Counter c2;
    c2 += 7;
    child.addCounter("misses", c2);
    group.addChild(child);

    std::ostringstream os;
    group.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("top.hits"), std::string::npos);
    EXPECT_NE(out.find("top.sub.misses"), std::string::npos);
    EXPECT_NE(out.find("some hits"), std::string::npos);
}

TEST(Stats, LookupFindsValues)
{
    StatGroup group("g");
    Counter c;
    c += 5;
    group.addCounter("n", c);
    group.addFormula("twice", [&] { return double(c.value()) * 2; });
    EXPECT_DOUBLE_EQ(group.lookup("g.n"), 5.0);
    EXPECT_DOUBLE_EQ(group.lookup("g.twice"), 10.0);
    EXPECT_TRUE(std::isnan(group.lookup("g.absent")));
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup group("g");
    Counter c;
    group.addFormula("rate", [&] { return double(c.value()); });
    EXPECT_DOUBLE_EQ(group.lookup("g.rate"), 0.0);
    c += 11;
    EXPECT_DOUBLE_EQ(group.lookup("g.rate"), 11.0);
}

TEST(Random, DeterministicAcrossInstances)
{
    SplitMix64 a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    SplitMix64 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Random, BelowStaysInRange)
{
    SplitMix64 rng(99);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Random, RangeInclusive)
{
    SplitMix64 rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        std::uint64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all values hit
}

TEST(Random, UniformInUnitInterval)
{
    SplitMix64 rng(5);
    double sum = 0;
    for (int i = 0; i < 4000; ++i) {
        double v = rng.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 4000, 0.5, 0.03);
}

TEST(Random, ChanceApproximatesProbability)
{
    SplitMix64 rng(21);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(1, 4);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}
