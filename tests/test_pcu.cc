/**
 * @file
 * Privilege Check Unit tests: the hybrid-grained check engine, the
 * privilege caches (hits, misses, LRU, flush, prefetch, bypass), the
 * Table 2 register access rules and the trusted-memory wiring.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/riscv/riscv_isa.hh"
#include "isagrid/domain_manager.hh"
#include "isagrid/pcu.hh"
#include "mem/phys_mem.hh"

using namespace isagrid;
using namespace isagrid::riscv;

namespace {

/** A PCU over real guest memory with a domain-0 runtime. */
struct PcuEnv
{
    explicit PcuEnv(PcuConfig config = PcuConfig::config8E())
        : mem(16 * 1024 * 1024), pcu(isa, mem, config),
          dm(pcu, mem, dmConfig())
    {
    }

    static DomainManagerConfig
    dmConfig()
    {
        DomainManagerConfig c;
        c.tmem_base = 8 * 1024 * 1024;
        c.tmem_size = 1024 * 1024;
        return c;
    }

    void
    enter(DomainId domain)
    {
        pcu.setGridReg(GridReg::Domain, domain);
        pcu.flushBuffers(PcuBuffer::InstCache); // reset bypass register
    }

    RiscvIsa isa;
    PhysMem mem;
    PrivilegeCheckUnit pcu;
    DomainManager dm;
};

} // namespace

TEST(Pcu, Domain0HasAllPrivileges)
{
    PcuEnv env;
    EXPECT_EQ(env.pcu.currentDomain(), 0u);
    for (InstTypeId t = 0; t < env.isa.numInstTypes(); ++t)
        EXPECT_TRUE(env.pcu.checkInstruction(t).allowed);
    EXPECT_TRUE(env.pcu.checkCsrRead(CSR_SATP).allowed);
    EXPECT_TRUE(env.pcu.checkCsrWrite(CSR_SATP, 0, ~0ull).allowed);
}

TEST(Pcu, FreshDomainHasNoPrivileges)
{
    PcuEnv env;
    DomainId d = env.dm.createDomain();
    env.dm.publish();
    env.enter(d);
    CheckOutcome out = env.pcu.checkInstruction(IT_ADD);
    EXPECT_FALSE(out.allowed);
    EXPECT_EQ(out.fault, FaultType::InstPrivilege);
    out = env.pcu.checkCsrRead(CSR_SEPC);
    EXPECT_FALSE(out.allowed);
    EXPECT_EQ(out.fault, FaultType::CsrPrivilege);
}

TEST(Pcu, InstructionGrantIsPerType)
{
    PcuEnv env;
    DomainId d = env.dm.createDomain();
    env.dm.allowInstruction(d, IT_ADD);
    env.dm.allowInstruction(d, IT_HALT);
    env.dm.publish();
    env.enter(d);
    EXPECT_TRUE(env.pcu.checkInstruction(IT_ADD).allowed);
    EXPECT_TRUE(env.pcu.checkInstruction(IT_HALT).allowed);
    EXPECT_FALSE(env.pcu.checkInstruction(IT_SUB).allowed);
    EXPECT_FALSE(env.pcu.checkInstruction(IT_SFENCE_VMA).allowed);
}

TEST(Pcu, RevokeInstructionTakesEffectAfterPublish)
{
    PcuEnv env;
    DomainId d = env.dm.createBaselineDomain();
    env.dm.publish();
    env.enter(d);
    EXPECT_TRUE(env.pcu.checkInstruction(IT_ADD).allowed);
    env.dm.revokeInstruction(d, IT_ADD);
    // Stale caches still allow (hardware caches are not snooped)...
    EXPECT_TRUE(env.pcu.checkInstruction(IT_ADD).allowed);
    // ...until domain-0 software flushes them (pflh).
    env.dm.publish();
    env.enter(d);
    EXPECT_FALSE(env.pcu.checkInstruction(IT_ADD).allowed);
}

TEST(Pcu, ReadAndWriteBitsAreIndependent)
{
    PcuEnv env;
    DomainId d = env.dm.createDomain();
    env.dm.allowCsrRead(d, CSR_SEPC);
    env.dm.allowCsrWrite(d, CSR_SSCRATCH);
    env.dm.publish();
    env.enter(d);
    EXPECT_TRUE(env.pcu.checkCsrRead(CSR_SEPC).allowed);
    EXPECT_FALSE(env.pcu.checkCsrWrite(CSR_SEPC, 0, 1).allowed);
    EXPECT_FALSE(env.pcu.checkCsrRead(CSR_SSCRATCH).allowed);
    EXPECT_TRUE(env.pcu.checkCsrWrite(CSR_SSCRATCH, 0, 1).allowed);
}

TEST(Pcu, UncontrolledCsrIsOutOfScope)
{
    PcuEnv env;
    DomainId d = env.dm.createDomain();
    env.dm.publish();
    env.enter(d);
    // 0x9999 is not in the controlled list: ISA-Grid does not police it
    // (the classical privilege level still applies in the core).
    EXPECT_TRUE(env.pcu.checkCsrRead(0x9999).allowed);
    EXPECT_TRUE(env.pcu.checkCsrWrite(0x9999, 0, 1).allowed);
}

TEST(Pcu, MaskPermitsOnlyMaskedBits)
{
    PcuEnv env;
    DomainId d = env.dm.createDomain();
    env.dm.setCsrMask(d, CSR_SSTATUS, SSTATUS_SIE | SSTATUS_SPIE);
    env.dm.publish();
    env.enter(d);
    RegVal old = SSTATUS_SPP;
    // Toggling SIE: allowed by the mask.
    EXPECT_TRUE(
        env.pcu.checkCsrWrite(CSR_SSTATUS, old, old | SSTATUS_SIE)
            .allowed);
    // Clearing SPP: not masked.
    CheckOutcome out = env.pcu.checkCsrWrite(CSR_SSTATUS, old, 0);
    EXPECT_FALSE(out.allowed);
    EXPECT_EQ(out.fault, FaultType::CsrMaskViolation);
    // A no-change write always passes the equation.
    EXPECT_TRUE(env.pcu.checkCsrWrite(CSR_SSTATUS, old, old).allowed);
}

TEST(Pcu, FullWriteBitOverridesMask)
{
    PcuEnv env;
    DomainId d = env.dm.createDomain();
    env.dm.allowCsrWrite(d, CSR_SSTATUS); // full write privilege
    env.dm.publish();
    env.enter(d);
    EXPECT_TRUE(env.pcu.checkCsrWrite(CSR_SSTATUS, 0, ~0ull).allowed);
}

TEST(Pcu, NonMaskableCsrWithoutWriteBitFaults)
{
    PcuEnv env;
    DomainId d = env.dm.createDomain();
    env.dm.publish();
    env.enter(d);
    CheckOutcome out = env.pcu.checkCsrWrite(CSR_SATP, 0, 0);
    EXPECT_FALSE(out.allowed);
    EXPECT_EQ(out.fault, FaultType::CsrPrivilege);
}

TEST(Pcu, DomainsAreIsolatedFromEachOther)
{
    PcuEnv env;
    DomainId d1 = env.dm.createDomain();
    DomainId d2 = env.dm.createDomain();
    env.dm.allowInstruction(d1, IT_ADD);
    env.dm.allowCsrRead(d2, CSR_SEPC);
    env.dm.publish();

    env.enter(d1);
    EXPECT_TRUE(env.pcu.checkInstruction(IT_ADD).allowed);
    EXPECT_FALSE(env.pcu.checkCsrRead(CSR_SEPC).allowed);

    env.enter(d2);
    EXPECT_FALSE(env.pcu.checkInstruction(IT_ADD).allowed);
    EXPECT_TRUE(env.pcu.checkCsrRead(CSR_SEPC).allowed);
}

// ---------------------------------------------------------------------
// Privilege caches
// ---------------------------------------------------------------------

TEST(PcuCaches, MissThenHitWithLatency)
{
    PcuEnv env;
    DomainId d = env.dm.createDomain();
    env.dm.allowCsrRead(d, CSR_SEPC);
    env.dm.publish();
    env.enter(d);

    CheckOutcome first = env.pcu.checkCsrRead(CSR_SEPC);
    EXPECT_TRUE(first.allowed);
    EXPECT_GT(first.stall, 0u) << "cold miss must pay a memory access";
    CheckOutcome second = env.pcu.checkCsrRead(CSR_SEPC);
    EXPECT_EQ(second.stall, 0u) << "hit incurs no extra cycles";
    EXPECT_EQ(env.pcu.regCache().misses(), 1u);
    EXPECT_EQ(env.pcu.regCache().hits(), 1u);
}

TEST(PcuCaches, TagsNeverAliasAcrossDomainIndexPairs)
{
    // Regression: the tag used to pack the index into 16 bits, so
    // (domain, index) and (domain + 1, index - 65536) shared a tag and
    // a privilege-cache hit could answer for the wrong domain.
    EXPECT_NE(PrivilegeCheckUnit::tagOf(1, 0),
              PrivilegeCheckUnit::tagOf(0, 65536));

    const DomainId domains[] = {0, 1, 2, 255, (1ull << 28) - 1};
    const std::uint32_t indices[] = {0, 1, 65535, 65536, 1u << 20,
                                     ~std::uint32_t{0}};
    std::set<std::uint64_t> tags;
    for (DomainId d : domains)
        for (std::uint32_t i : indices)
            EXPECT_TRUE(
                tags.insert(PrivilegeCheckUnit::tagOf(d, i)).second)
                << "tag collision at domain " << d << " index " << i;
}

TEST(PcuCaches, TagsIncludeDomainSoSwitchNeedsNoFlush)
{
    PcuEnv env;
    DomainId d1 = env.dm.createDomain();
    DomainId d2 = env.dm.createDomain();
    env.dm.allowCsrRead(d1, CSR_SEPC);
    env.dm.allowCsrRead(d2, CSR_SEPC);
    env.dm.publish();

    env.enter(d1);
    env.pcu.checkCsrRead(CSR_SEPC); // fill d1 entry
    env.enter(d2);
    env.pcu.checkCsrRead(CSR_SEPC); // fill d2 entry
    env.enter(d1);
    EXPECT_EQ(env.pcu.checkCsrRead(CSR_SEPC).stall, 0u)
        << "d1's entry must have survived the domain switches";
}

TEST(PcuCaches, BypassRegisterServesRepeatChecks)
{
    PcuEnv env;
    DomainId d = env.dm.createBaselineDomain();
    env.dm.publish();
    env.enter(d);

    env.pcu.checkInstruction(IT_ADD); // refill
    std::uint64_t lookups = env.pcu.instCache().lookups();
    for (int i = 0; i < 100; ++i)
        env.pcu.checkInstruction(IT_ADD);
    EXPECT_EQ(env.pcu.instCache().lookups(), lookups)
        << "bypassed checks must not touch the CAM";
    EXPECT_GE(env.pcu.bypassChecks(), 100u);
}

TEST(PcuCaches, BypassDisabledProbesCacheEveryTime)
{
    PcuConfig config = PcuConfig::config8E();
    config.bypass_enabled = false;
    PcuEnv env(config);
    DomainId d = env.dm.createBaselineDomain();
    env.dm.publish();
    env.enter(d);

    for (int i = 0; i < 50; ++i)
        env.pcu.checkInstruction(IT_ADD);
    EXPECT_GE(env.pcu.instCache().lookups(), 50u);
    EXPECT_EQ(env.pcu.bypassChecks(), 0u);
}

TEST(PcuCaches, NoSgtCacheConfigReadsMemoryEveryGate)
{
    PcuEnv env(PcuConfig::config8EN());
    DomainId d = env.dm.createBaselineDomain();
    GateId g = env.dm.registerGate(0x1000, 0x2000, d);
    env.dm.publish();

    GateOutcome o1 = env.pcu.gateCall(g, 0x1000, false);
    ASSERT_TRUE(o1.ok);
    EXPECT_GT(o1.stall, 0u);
    env.enter(0);
    GateOutcome o2 = env.pcu.gateCall(g, 0x1000, false);
    EXPECT_GT(o2.stall, 0u) << "8E.N always fetches the SGT from memory";
}

TEST(PcuCaches, SgtCacheHitsAfterFirstUse)
{
    PcuEnv env(PcuConfig::config8E());
    DomainId d = env.dm.createBaselineDomain();
    GateId g = env.dm.registerGate(0x1000, 0x2000, d);
    env.dm.publish();

    env.pcu.gateCall(g, 0x1000, false);
    env.enter(0);
    GateOutcome o2 = env.pcu.gateCall(g, 0x1000, false);
    EXPECT_EQ(o2.stall, 0u);
    EXPECT_EQ(env.pcu.sgtCache().hits(), 1u);
}

TEST(PcuCaches, LruEvictionUnderPressure)
{
    PcuConfig config;
    config.hpt_cache_entries = 2; // tiny mask cache
    PcuEnv env(config);
    DomainId d1 = env.dm.createDomain();
    DomainId d2 = env.dm.createDomain();
    DomainId d3 = env.dm.createDomain();
    for (DomainId d : {d1, d2, d3})
        env.dm.setCsrMask(d, CSR_SSTATUS, SSTATUS_SIE);
    env.dm.publish();

    auto probe = [&](DomainId d) {
        env.pcu.setGridReg(GridReg::Domain, d);
        return env.pcu.checkCsrWrite(CSR_SSTATUS, 0, SSTATUS_SIE)
            .stall;
    };
    probe(d1); // miss, fill
    probe(d2); // miss, fill (cache now d1,d2)
    EXPECT_EQ(probe(d1), 0u); // hit, d2 becomes LRU
    probe(d3); // evicts d2
    EXPECT_GT(probe(d2), 0u) << "d2's mask must have been evicted";
}

TEST(PcuCaches, PrefetchWarmsCsrEntries)
{
    PcuEnv env;
    DomainId d = env.dm.createDomain();
    env.dm.allowCsrRead(d, CSR_SEPC);
    env.dm.setCsrMask(d, CSR_SSTATUS, SSTATUS_SIE);
    env.dm.publish();
    env.enter(d);

    EXPECT_EQ(env.pcu.prefetch(0), 0u); // all CSRs, no pipeline stall
    EXPECT_EQ(env.pcu.checkCsrRead(CSR_SEPC).stall, 0u);
    EXPECT_EQ(env.pcu.checkCsrWrite(CSR_SSTATUS, 0, SSTATUS_SIE).stall,
              0u);
}

TEST(PcuCaches, PrefetchSingleCsrIsSelective)
{
    PcuEnv env;
    DomainId d = env.dm.createDomain();
    env.dm.setCsrMask(d, CSR_SSTATUS, SSTATUS_SIE);
    env.dm.publish();
    env.enter(d);

    env.pcu.prefetch(CSR_SSTATUS);
    EXPECT_EQ(env.pcu.checkCsrWrite(CSR_SSTATUS, 0, SSTATUS_SIE).stall,
              0u);
}

TEST(PcuCaches, FlushSelectsBuffer)
{
    PcuEnv env;
    DomainId d = env.dm.createDomain();
    env.dm.allowCsrRead(d, CSR_SEPC);
    env.dm.publish();
    env.enter(d);
    env.pcu.checkCsrRead(CSR_SEPC);
    env.pcu.flushBuffers(PcuBuffer::RegCache);
    EXPECT_GT(env.pcu.checkCsrRead(CSR_SEPC).stall, 0u);
}

// ---------------------------------------------------------------------
// Table 2 register rules
// ---------------------------------------------------------------------

TEST(GridRegs, DomainAndPdomainReadableEverywhere)
{
    PcuEnv env;
    DomainId d = env.dm.createBaselineDomain();
    GateId g = env.dm.registerGate(0x100, 0x200, d);
    env.dm.publish();
    env.pcu.gateCall(g, 0x100, false);

    RegVal v = 0;
    EXPECT_TRUE(env.pcu.readGridReg(GridReg::Domain, v).allowed);
    EXPECT_EQ(v, d);
    EXPECT_TRUE(env.pcu.readGridReg(GridReg::PDomain, v).allowed);
    EXPECT_EQ(v, 0u);
    // Everything else is domain-0 only.
    EXPECT_FALSE(env.pcu.readGridReg(GridReg::GateAddr, v).allowed);
    EXPECT_FALSE(env.pcu.readGridReg(GridReg::Tmemb, v).allowed);
}

TEST(GridRegs, WritesOnlyFromDomain0)
{
    PcuEnv env;
    DomainId d = env.dm.createBaselineDomain();
    GateId g = env.dm.registerGate(0x100, 0x200, d);
    env.dm.publish();

    EXPECT_TRUE(env.pcu.writeGridReg(GridReg::GateNr, 5).allowed);
    env.pcu.gateCall(g, 0x100, false);
    EXPECT_FALSE(env.pcu.writeGridReg(GridReg::GateNr, 6).allowed);
    EXPECT_EQ(env.pcu.gridReg(GridReg::GateNr), 5u);
}

TEST(GridRegs, DomainRegisterNeverWritableByCsrInstructions)
{
    PcuEnv env;
    // Even domain-0 cannot move the domain register with a CSR write;
    // only the switching engine does (Section 5.1).
    EXPECT_FALSE(env.pcu.writeGridReg(GridReg::Domain, 3).allowed);
    EXPECT_FALSE(env.pcu.writeGridReg(GridReg::PDomain, 3).allowed);
}

TEST(GridRegs, TmemRegistersDriveTheRangeCheck)
{
    PcuEnv env;
    // Configured by the DomainManager constructor already:
    EXPECT_TRUE(env.pcu.trustedMemory().enabled());
    EXPECT_FALSE(env.pcu.memoryAccessAllowed(
        env.dm.trustedStackBase(), 8) &&
        env.pcu.currentDomain() != 0)
        << "not reachable: domain-0 may access";
    // From a non-zero domain the stack region is off limits.
    env.pcu.setGridReg(GridReg::Domain, 1);
    EXPECT_FALSE(
        env.pcu.memoryAccessAllowed(env.dm.trustedStackBase(), 8));
    EXPECT_TRUE(env.pcu.memoryAccessAllowed(0x1000, 8));
}

TEST(GridRegs, StatsCountFaults)
{
    PcuEnv env;
    DomainId d = env.dm.createDomain();
    env.dm.publish();
    env.enter(d);
    std::uint64_t before = env.pcu.faults();
    env.pcu.checkInstruction(IT_ADD);
    env.pcu.checkCsrRead(CSR_SEPC);
    EXPECT_EQ(env.pcu.faults(), before + 2);
}

// ---------------------------------------------------------------------
// Legal-instruction cache (Section 8 "Cache Optimization")
// ---------------------------------------------------------------------

TEST(LegalCache, HitSkipsTheCheckLogic)
{
    PcuConfig config = PcuConfig::config8E();
    config.legal_cache_entries = 16;
    PcuEnv env(config);
    DomainId d = env.dm.createBaselineDomain();
    env.dm.publish();
    env.enter(d);

    EXPECT_TRUE(env.pcu.checkInstructionAt(IT_ADD, 0x1000, true)
                    .allowed);
    std::uint64_t bypass_before = env.pcu.bypassChecks();
    EXPECT_TRUE(env.pcu.checkInstructionAt(IT_ADD, 0x1000, true)
                    .allowed);
    EXPECT_EQ(env.pcu.bypassChecks(), bypass_before)
        << "a legal-cache hit must bypass even the bypass register";
    EXPECT_EQ(env.pcu.legalCache().hits(), 1u);
}

TEST(LegalCache, DeniedInstructionsAreNeverCached)
{
    PcuConfig config = PcuConfig::config8E();
    config.legal_cache_entries = 16;
    PcuEnv env(config);
    DomainId d = env.dm.createDomain(); // no privileges
    env.dm.publish();
    env.enter(d);

    EXPECT_FALSE(env.pcu.checkInstructionAt(IT_ADD, 0x1000, true)
                     .allowed);
    EXPECT_FALSE(env.pcu.checkInstructionAt(IT_ADD, 0x1000, true)
                     .allowed);
    EXPECT_EQ(env.pcu.legalCache().hits(), 0u);
}

TEST(LegalCache, ValueDependentChecksAlwaysRerun)
{
    PcuConfig config = PcuConfig::config8E();
    config.legal_cache_entries = 16;
    PcuEnv env(config);
    DomainId d = env.dm.createBaselineDomain();
    env.dm.publish();
    env.enter(d);

    env.pcu.checkInstructionAt(IT_CSRRW, 0x1000, false);
    env.pcu.checkInstructionAt(IT_CSRRW, 0x1000, false);
    EXPECT_EQ(env.pcu.legalCache().hits() +
                  env.pcu.legalCache().misses(), 0u)
        << "non-cacheable checks must not touch the legal cache";
}

TEST(LegalCache, TagsIncludeTheDomain)
{
    PcuConfig config = PcuConfig::config8E();
    config.legal_cache_entries = 16;
    PcuEnv env(config);
    DomainId d1 = env.dm.createBaselineDomain();
    DomainId d2 = env.dm.createDomain(); // ADD not allowed
    env.dm.publish();

    env.enter(d1);
    EXPECT_TRUE(env.pcu.checkInstructionAt(IT_ADD, 0x1000, true)
                    .allowed);
    env.enter(d2);
    EXPECT_FALSE(env.pcu.checkInstructionAt(IT_ADD, 0x1000, true)
                     .allowed)
        << "d1's legal-cache entry must not leak into d2";
}

TEST(LegalCache, FlushInvalidates)
{
    PcuConfig config = PcuConfig::config8E();
    config.legal_cache_entries = 16;
    PcuEnv env(config);
    DomainId d = env.dm.createBaselineDomain();
    env.dm.publish();
    env.enter(d);
    env.pcu.checkInstructionAt(IT_ADD, 0x1000, true);
    // Revoke + publish: the stale legal entry must be gone.
    env.dm.revokeInstruction(d, IT_ADD);
    env.dm.publish();
    env.enter(d);
    EXPECT_FALSE(env.pcu.checkInstructionAt(IT_ADD, 0x1000, true)
                     .allowed);
}

// ---------------------------------------------------------------------
// Unified HPT cache (the Section 4.3 design alternative)
// ---------------------------------------------------------------------

TEST(UnifiedHpt, BehavesLikeSeparateCaches)
{
    PcuConfig config = PcuConfig::config8E();
    config.unified_hpt_cache = true;
    PcuEnv env(config);
    DomainId d = env.dm.createBaselineDomain();
    env.dm.allowCsrRead(d, CSR_SEPC);
    env.dm.setCsrMask(d, CSR_SSTATUS, SSTATUS_SIE);
    env.dm.publish();
    env.enter(d);

    EXPECT_TRUE(env.pcu.checkInstruction(IT_ADD).allowed);
    EXPECT_FALSE(env.pcu.checkInstruction(IT_SFENCE_VMA).allowed);
    EXPECT_TRUE(env.pcu.checkCsrRead(CSR_SEPC).allowed);
    EXPECT_FALSE(env.pcu.checkCsrRead(CSR_SATP).allowed);
    EXPECT_TRUE(
        env.pcu.checkCsrWrite(CSR_SSTATUS, 0, SSTATUS_SIE).allowed);
    EXPECT_FALSE(
        env.pcu.checkCsrWrite(CSR_SSTATUS, 0, SSTATUS_SPP).allowed);
    // All three HPT structures share one array (3x entries).
    EXPECT_EQ(env.pcu.instCache().numEntries(), 24u);
    EXPECT_EQ(env.pcu.regCache().numEntries(), 0u);
    EXPECT_EQ(env.pcu.maskCache().numEntries(), 0u);
}

TEST(UnifiedHpt, EntryTypesDoNotAlias)
{
    // Instruction group 0 and register group 0 of the same domain have
    // identical (domain, index) pairs; the entry-type tag field must
    // keep them apart.
    PcuConfig config = PcuConfig::config8E();
    config.unified_hpt_cache = true;
    PcuEnv env(config);
    DomainId d = env.dm.createDomain();
    env.dm.allowInstruction(d, IT_ADD); // inst word 0 nonzero
    // reg word 0 stays zero: no CSR grants.
    env.dm.publish();
    env.enter(d);
    EXPECT_TRUE(env.pcu.checkInstruction(IT_ADD).allowed);
    // If the reg-bitmap lookup aliased the inst word, bit 1 (write of
    // CSR 0 = sstatus... read bit of CSR 0) could leak through.
    EXPECT_FALSE(env.pcu.checkCsrRead(CSR_SSTATUS).allowed);
    EXPECT_FALSE(env.pcu.checkCsrWrite(CSR_SEPC, 0, 1).allowed);
}

TEST(UnifiedHpt, RegFlushAlsoInvalidatesBypassSnapshot)
{
    PcuConfig config = PcuConfig::config8E();
    config.unified_hpt_cache = true;
    PcuEnv env(config);
    DomainId d = env.dm.createBaselineDomain();
    env.dm.publish();
    env.enter(d);
    env.pcu.checkInstruction(IT_ADD);
    env.dm.revokeInstruction(d, IT_ADD);
    // Flushing the "register" buffer flushes the unified array; the
    // bypass register must not serve stale instruction bits.
    env.pcu.flushBuffers(PcuBuffer::RegCache);
    EXPECT_FALSE(env.pcu.checkInstruction(IT_ADD).allowed);
}

// ---------------------------------------------------------------------
// PcuCache unit regressions (the raw CAM template, isagrid/pcu_cache.hh)
// ---------------------------------------------------------------------

TEST(PcuCacheUnit, FillUpdatesMatchingEntryPastInvalidSlot)
{
    // Regression: fill()'s victim scan used to stop at the first
    // invalid slot, so a matching entry *after* that slot was
    // duplicated instead of updated. The duplicate silently ate a
    // slot, evicting an unrelated entry once the cache filled up.
    PcuCache<std::uint64_t> cache("unit_fill", 4);
    std::uint64_t v = 0;

    cache.fill(0xA, 1);
    cache.fill(0xB, 2);
    cache.fill(0xC, 3);
    ASSERT_TRUE(cache.lookup(0xB, v)); // keep B hotter than C
    cache.flushTag(0xA); // invalid slot now sits *before* B and C

    cache.fill(0xB, 20); // must update B in place, not duplicate it
    cache.fill(0xD, 4);
    cache.fill(0xE, 5); // two free slots exist iff B was not duplicated

    EXPECT_TRUE(cache.lookup(0xC, v))
        << "C was evicted: a duplicate of B consumed its slot";
    EXPECT_TRUE(cache.lookup(0xB, v));
    EXPECT_EQ(v, 20u) << "stale duplicate payload won the match scan";
    EXPECT_TRUE(cache.lookup(0xD, v));
    EXPECT_TRUE(cache.lookup(0xE, v));
}

TEST(PcuCacheUnit, ContainsCountsTowardLookupEnergyProxy)
{
    // A presence probe is a real CAM search in hardware: it must show
    // up in the `lookups` energy proxy even though it leaves hit/miss
    // stats and LRU state alone.
    PcuCache<std::uint64_t> cache("unit_contains", 4);
    cache.fill(0xA, 1);

    std::uint64_t lookups = cache.lookups();
    std::uint64_t hits = cache.hits();
    std::uint64_t misses = cache.misses();

    EXPECT_TRUE(cache.contains(0xA));
    EXPECT_FALSE(cache.contains(0xB));

    EXPECT_EQ(cache.lookups(), lookups + 2);
    EXPECT_EQ(cache.hits(), hits) << "contains must not count a hit";
    EXPECT_EQ(cache.misses(), misses) << "contains must not count a miss";
}

TEST(PcuCacheUnit, PrefetchProbesAreVisibleInLookupStats)
{
    // End-to-end: prefetch() probes the register-bitmap cache with
    // contains() before each fill; those probes are CAM searches and
    // must raise the energy proxy.
    PcuEnv env;
    DomainId d = env.dm.createBaselineDomain();
    env.dm.publish();
    env.enter(d);

    std::uint64_t before = env.pcu.regCache().lookups();
    env.pcu.prefetch(0);
    EXPECT_GT(env.pcu.regCache().lookups(), before)
        << "prefetch presence checks must count as CAM lookups";
}
