/**
 * @file
 * Hybrid Privilege Table layout tests and property sweeps of the
 * Section 4.1 bit-mask equation.
 */

#include <gtest/gtest.h>

#include "isagrid/hpt.hh"
#include "sim/random.hh"

using namespace isagrid;

TEST(HptLayout, GroupCountsRoundUp)
{
    HptLayout l(64, 13, 1);
    EXPECT_EQ(l.numInstGroups(), 1u);
    EXPECT_EQ(l.numRegGroups(), 1u);
    EXPECT_EQ(l.numMaskEntries(), 1u);

    HptLayout l2(65, 33, 3);
    EXPECT_EQ(l2.numInstGroups(), 2u);
    EXPECT_EQ(l2.numRegGroups(), 2u); // 33 CSRs * 2 bits = 66 bits
    EXPECT_EQ(l2.numMaskEntries(), 3u);
}

TEST(HptLayout, StridesAreWordMultiples)
{
    HptLayout l(100, 40, 2);
    EXPECT_EQ(l.instStride() % 8, 0u);
    EXPECT_EQ(l.regStride() % 8, 0u);
    EXPECT_EQ(l.maskStride(), 16u);
}

TEST(HptLayout, AddressesAreDomainDisjoint)
{
    HptLayout l(64, 13, 1);
    Addr base = 0x1000;
    // No two (domain, group) pairs may alias.
    std::set<Addr> seen;
    for (DomainId d = 0; d < 16; ++d) {
        for (std::uint32_t g = 0; g < l.numInstGroups(); ++g)
            EXPECT_TRUE(seen.insert(l.instWordAddr(base, d, g)).second);
    }
}

TEST(HptLayout, RegBitPositionsInterleaveReadWrite)
{
    EXPECT_EQ(HptLayout::regReadBit(0), 0u);
    EXPECT_EQ(HptLayout::regWriteBit(0), 1u);
    EXPECT_EQ(HptLayout::regReadBit(1), 2u);
    EXPECT_EQ(HptLayout::regWriteBit(31), 63u);
    EXPECT_EQ(HptLayout::regGroupOf(31), 0u);
    EXPECT_EQ(HptLayout::regGroupOf(32), 1u);
}

TEST(HptLayout, InstBitPositions)
{
    EXPECT_EQ(HptLayout::instGroupOf(63), 0u);
    EXPECT_EQ(HptLayout::instGroupOf(64), 1u);
    EXPECT_EQ(HptLayout::instBitOf(64), 0u);
    EXPECT_EQ(HptLayout::instBitOf(70), 6u);
}

TEST(MaskEquation, PaperExamples)
{
    // (V_csr ^ V_write) & ~M == 0
    // Identical write always passes, even with an empty mask.
    EXPECT_TRUE(HptLayout::maskPermits(0xff, 0xff, 0));
    // Flipping a masked bit passes.
    EXPECT_TRUE(HptLayout::maskPermits(0b0000, 0b0100, 0b0100));
    // Flipping an unmasked bit fails.
    EXPECT_FALSE(HptLayout::maskPermits(0b0000, 0b0100, 0b0010));
    // Full mask allows everything.
    EXPECT_TRUE(HptLayout::maskPermits(0, ~0ull, ~0ull));
}

/** Property: permitted iff every changed bit is inside the mask. */
TEST(MaskEquation, MatchesChangedBitsDefinition)
{
    SplitMix64 rng(42);
    for (int i = 0; i < 20000; ++i) {
        RegVal v = rng.next(), w = rng.next(), m = rng.next();
        bool naive = ((v ^ w) & ~m) == 0;
        bool changed_outside_mask = false;
        for (int b = 0; b < 64; ++b) {
            bool changed = ((v >> b) & 1) != ((w >> b) & 1);
            bool masked = (m >> b) & 1;
            if (changed && !masked)
                changed_outside_mask = true;
        }
        EXPECT_EQ(HptLayout::maskPermits(v, w, m), naive);
        EXPECT_EQ(naive, !changed_outside_mask);
    }
}

/** Property: masks compose monotonically — widening never revokes. */
TEST(MaskEquation, WideningMaskIsMonotonic)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 5000; ++i) {
        RegVal v = rng.next(), w = rng.next();
        RegVal m = rng.next(), extra = rng.next();
        if (HptLayout::maskPermits(v, w, m)) {
            EXPECT_TRUE(HptLayout::maskPermits(v, w, m | extra));
        }
    }
}
