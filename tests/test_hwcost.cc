/**
 * @file
 * Hardware-cost model tests: reproduction of the paper's Table 6
 * anchors, structural monotonicity, and zero-BRAM/DSP deltas.
 */

#include <gtest/gtest.h>

#include "hwcost/hwcost.hh"

using namespace isagrid;

namespace {

PcuStructure
rocketStructure(const PcuConfig &config)
{
    return pcuStructure(config, 64, 13, 1, 12);
}

} // namespace

TEST(HwCost, ReproducesPaperAnchorsWithinTolerance)
{
    struct Anchor
    {
        PcuConfig config;
        double lut_pct, ff_pct;
    } anchors[] = {
        {PcuConfig::config16E(), 4.47, 7.20},
        {PcuConfig::config8E(), 3.03, 4.34},
        {PcuConfig::config8EN(), 2.21, 2.95},
    };
    for (const auto &a : anchors) {
        HwCost delta = pcuCost(rocketStructure(a.config));
        double lut_pct = overheadPercent(delta.lut_logic,
                                         RocketBaseline::lut_logic);
        double ff_pct = overheadPercent(delta.slice_regs,
                                        RocketBaseline::slice_regs);
        EXPECT_NEAR(lut_pct, a.lut_pct, 0.25);
        EXPECT_NEAR(ff_pct, a.ff_pct, 0.25);
    }
}

TEST(HwCost, OrderingMatchesTable6)
{
    HwCost c16 = pcuCost(rocketStructure(PcuConfig::config16E()));
    HwCost c8 = pcuCost(rocketStructure(PcuConfig::config8E()));
    HwCost c8n = pcuCost(rocketStructure(PcuConfig::config8EN()));
    EXPECT_GT(c16.lut_logic, c8.lut_logic);
    EXPECT_GT(c8.lut_logic, c8n.lut_logic);
    EXPECT_GT(c16.slice_regs, c8.slice_regs);
    EXPECT_GT(c8.slice_regs, c8n.slice_regs);
}

TEST(HwCost, NoBlockRamOrDspDelta)
{
    HwCost total = totalWithPcu(rocketStructure(PcuConfig::config8E()));
    EXPECT_EQ(total.ramb36, RocketBaseline::ramb36);
    EXPECT_EQ(total.ramb18, RocketBaseline::ramb18);
    EXPECT_EQ(total.dsp, RocketBaseline::dsp);
    EXPECT_EQ(total.lut_memory, RocketBaseline::lut_memory);
}

TEST(HwCost, StructureScalesLinearlyWithEntries)
{
    PcuConfig small, big;
    small.hpt_cache_entries = 4;
    small.sgt_cache_entries = 4;
    big.hpt_cache_entries = 8;
    big.sgt_cache_entries = 8;
    PcuStructure s = rocketStructure(small);
    PcuStructure b = rocketStructure(big);
    EXPECT_EQ(b.storage_bits - s.storage_bits,
              s.storage_bits - rocketStructure(PcuConfig{0, 0, true, 0})
                                   .storage_bits);
    EXPECT_EQ(b.cam_bits, 2 * s.cam_bits);
}

TEST(HwCost, NoSgtCacheRemovesItsBits)
{
    PcuConfig with = PcuConfig::config8E();
    PcuConfig without = PcuConfig::config8EN();
    PcuStructure sw = rocketStructure(with);
    PcuStructure so = rocketStructure(without);
    EXPECT_GT(sw.storage_bits, so.storage_bits);
    EXPECT_GT(sw.mux_bits, so.mux_bits);
    EXPECT_EQ(sw.reg_bits, so.reg_bits);
}

TEST(HwCost, BypassRegisterCountsTowardRegisterBits)
{
    PcuConfig on = PcuConfig::config8E();
    PcuConfig off = on;
    off.bypass_enabled = false;
    EXPECT_GT(rocketStructure(on).reg_bits,
              rocketStructure(off).reg_bits);
}

TEST(HwCost, CostNeverNegative)
{
    PcuConfig tiny;
    tiny.hpt_cache_entries = 0;
    tiny.sgt_cache_entries = 0;
    tiny.bypass_enabled = false;
    HwCost c = pcuCost(rocketStructure(tiny));
    EXPECT_GE(c.lut_logic, 0.0);
    EXPECT_GE(c.slice_regs, 0.0);
}
