/**
 * @file
 * Block-translation engine equivalence tests (cpu/block).
 *
 * The engine is a host-side fast path only, so the properties under
 * test mirror the decode-cache contract but are stronger, because the
 * engine also *hoists* privilege checks to block entry:
 *
 *  - enabling the engine changes nothing observable: architectural
 *    results, cycle counts and every modeled statistic are
 *    bit-identical on the LMbench suite (all three stock PCU
 *    configurations, both ISAs) and across the whole attack corpus —
 *    including the exact faulting pc of every blocked attack;
 *  - self-modifying code observes the new instruction on the very
 *    next execution (invalidation is exact, per 64B write
 *    generation);
 *  - the block-entry check-memo is flushed by policy republication:
 *    revoking a privilege and publishing faults at the exact pc the
 *    interpreter faults at, even when the faulting instruction sits
 *    in the middle of an already-translated hot block;
 *  - the domain-noninterference oracle (src/contract) reaches the
 *    same verdicts when its replayed machines run the block engine.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

#include "attacks/attacks.hh"
#include "contract/contract.hh"
#include "cpu/machine.hh"
#include "isa/riscv/assembler.hh"
#include "isa/riscv/opcodes.hh"
#include "isa/x86/assembler.hh"
#include "kernel/kernel_builder.hh"
#include "kernel/layout.hh"
#include "workloads/lmbench.hh"

using namespace isagrid;

namespace {

/** A hair-trigger hot threshold so short tests translate eagerly. */
constexpr std::uint32_t kHotNow = 2;

MachineConfig
blockConfig(bool on, PcuConfig pcu = PcuConfig::config8E())
{
    MachineConfig cfg;
    cfg.pcu = pcu;
    cfg.block_engine = on;
    cfg.block_hot_threshold = kHotNow;
    return cfg;
}

/**
 * Self-modifying RISC-V program (same shape as the decode-cache SMC
 * test, but with a warm-up loop so the patched pc sits inside a block
 * that is already translated when the store hits it):
 *
 *   loop:  T: addi x6, x0, 1      <- patched to addi x6, x0, 99
 *             x8 = &T; sw x7, 0(x8)
 *             if (--x5) goto loop
 *          halt(x6)
 */
RunResult
runRiscvSmc(Machine &m, std::uint64_t iters)
{
    const Addr patch_addr = 0x3000;
    riscv::RiscvAsm patch(patch_addr);
    patch.addi(6, 0, 99);
    patch.loadInto(m.mem());

    riscv::RiscvAsm a(0x1000);
    a.li(5, static_cast<std::int64_t>(iters));
    a.li(7, patch_addr);
    a.lw(7, 7, 0); // x7 = encoding of "addi x6, x0, 99"
    auto loop = a.newLabel();
    a.bind(loop);
    Addr t_addr = a.here();
    a.addi(6, 0, 1); // T: the instruction under attack
    a.li(8, t_addr);
    a.sw(7, 8, 0); // patch T for the next iteration
    a.addi(5, 5, -1);
    a.bne(5, 0, loop);
    a.halt(6);
    a.loadInto(m.mem());
    return m.run(0x1000, 100'000);
}

/**
 * Self-modifying RISC-V program whose patch *differs every
 * iteration*: T's immediate field (addi bits 31:20) is rewritten to
 * the live loop counter, so every store after translation is a real
 * code change and forces a retranslation (not just a generation
 * refresh). Iteration i executes the immediate stored by iteration
 * i+1 of the countdown, so the final halt code is 2 for iters >= 2.
 *
 *   loop:  T: addi x6, x0, 0      <- immediate patched to x5
 *             x8 = &T; x9 = encoding(addi x6,x0,0) + (x5 << 20)
 *             sw x9, 0(x8)
 *             if (--x5) goto loop
 *          halt(x6)
 */
RunResult
runRiscvSmcVarying(Machine &m, std::uint64_t iters)
{
    const Addr patch_addr = 0x3000;
    riscv::RiscvAsm patch(patch_addr);
    patch.addi(6, 0, 0); // base encoding, immediate field zero
    patch.loadInto(m.mem());

    riscv::RiscvAsm a(0x1000);
    a.li(5, static_cast<std::int64_t>(iters));
    a.li(7, patch_addr);
    a.lw(7, 7, 0); // x7 = encoding of "addi x6, x0, 0"
    auto loop = a.newLabel();
    a.bind(loop);
    Addr t_addr = a.here();
    a.addi(6, 0, 0); // T: immediate rewritten every iteration
    a.li(8, t_addr);
    a.slli(9, 5, 20); // x9 = x5 << 20 (the I-immediate field)
    a.add(9, 9, 7);
    a.sw(9, 8, 0);
    a.addi(5, 5, -1);
    a.bne(5, 0, loop);
    a.halt(6);
    a.loadInto(m.mem());
    return m.run(0x1000, 100'000);
}

/** Same shape on x86: T is "movImm rax, 1" (10 bytes). */
RunResult
runX86Smc(Machine &m, std::uint64_t iters)
{
    using namespace x86;
    const Addr patch_addr = 0x3000;
    X86Asm patch(patch_addr);
    patch.movImm(RAX, 99);
    patch.loadInto(m.mem());

    X86Asm a(0x1000);
    a.movImm(RCX, static_cast<std::int64_t>(iters));
    auto loop = a.newLabel();
    a.bind(loop);
    Addr t_addr = a.here();
    a.movImm(RAX, 1); // T: patched to movImm RAX, 99
    a.movImm(RDX, patch_addr);
    a.movImm(RBX, t_addr);
    a.load64(RSI, RDX, 0);
    a.store64(RSI, RBX, 0);
    a.load16(RSI, RDX, 8);
    a.store16(RSI, RBX, 8);
    a.addi(RCX, -1);
    a.jnz(loop);
    a.halt(RAX);
    a.loadInto(m.mem());
    return m.run(0x1000, 100'000);
}

/** Run the LMbench suite under a decomposed kernel; return the run
 *  result plus the full stats dump. */
std::pair<RunResult, std::string>
runLmbench(bool x86_isa, bool block_on, PcuConfig pcu)
{
    auto m = x86_isa ? Machine::gem5x86(blockConfig(block_on, pcu))
                     : Machine::rocket(blockConfig(block_on, pcu));
    Addr entry = buildLmbenchSuite(*m, 30);
    KernelConfig kc;
    kc.mode = KernelMode::Decomposed;
    KernelBuilder builder(*m, kc);
    KernelImage image = builder.build(entry);
    RunResult r = m->run(image.boot_pc, 200'000'000);
    if (block_on) {
        const BlockEngine *eng = m->core().blockEngine();
        EXPECT_NE(eng, nullptr);
        EXPECT_GT(eng->stats().entries, 0u)
            << "block engine never entered a translated block";
        EXPECT_GT(eng->stats().translated_insts, 0u);
    }
    std::ostringstream os;
    m->dumpStats(os);
    return {r, os.str()};
}

/** Replay one attack scenario with the block engine on/off; return
 *  the run result plus the full stats dump. */
std::pair<RunResult, std::string>
runAttackWithEngine(const AttackScenario &scenario, bool x86_isa,
                    bool block_on)
{
    PreparedAttack prepared = prepareAttack(scenario, x86_isa, true);
    Machine &m = *prepared.machine;
    if (block_on)
        m.core().setBlockEngine(kHotNow);
    m.core().reset(prepared.payload_entry);
    m.pcu().setGridReg(GridReg::Domain, prepared.payload_domain);
    RunResult r = m.core().run(100'000);
    std::ostringstream os;
    m.dumpStats(os);
    return {r, os.str()};
}

void
expectIdentical(const std::pair<RunResult, std::string> &on,
                const std::pair<RunResult, std::string> &off,
                const std::string &what)
{
    EXPECT_EQ(on.first.reason, off.first.reason) << what;
    EXPECT_EQ(on.first.halt_code, off.first.halt_code) << what;
    EXPECT_EQ(on.first.fault, off.first.fault) << what;
    EXPECT_EQ(on.first.fault_pc, off.first.fault_pc) << what;
    EXPECT_EQ(on.first.instructions, off.first.instructions) << what;
    EXPECT_EQ(on.first.cycles, off.first.cycles) << what;
    EXPECT_EQ(on.second, off.second)
        << what << ": stat dumps differ between block engine on/off";
}

const AttackScenario *
findAttack(const std::vector<AttackScenario> &list,
           const std::string &name)
{
    for (const AttackScenario &s : list)
        if (s.name == name)
            return &s;
    return nullptr;
}

} // namespace

// ---------------------------------------------------------------------
// Exact SMC invalidation under translation
// ---------------------------------------------------------------------

TEST(BlockSmc, RiscvPatchOfTranslatedBlockIsObserved)
{
    // Every iteration writes a *different* encoding into the already-
    // translated loop body: each entry must observe the new immediate
    // through a real retranslation.
    auto m = Machine::rocket(blockConfig(true));
    RunResult r = runRiscvSmcVarying(*m, 6);
    ASSERT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(r.halt_code, 2u)
        << "translated block served a stale instruction after SMC";
    ASSERT_NE(m->core().blockEngine(), nullptr);
    const auto &st = m->core().blockEngine()->stats();
    EXPECT_GT(st.entries, 0u) << "loop never ran translated";
    EXPECT_GE(st.invalidations, 1u)
        << "the patching store must invalidate the translation";
    EXPECT_GE(st.retranslations, 1u);
}

TEST(BlockSmc, RiscvSameByteStoreOnlyRefreshes)
{
    // The first patch (1 -> 99) lands before the loop is hot; every
    // later store rewrites identical bytes. Entry revalidation must
    // take the cheap generation-refresh path, never a retranslation.
    auto m = Machine::rocket(blockConfig(true));
    RunResult r = runRiscvSmc(*m, 20);
    ASSERT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(r.halt_code, 99u);
    ASSERT_NE(m->core().blockEngine(), nullptr);
    const auto &st = m->core().blockEngine()->stats();
    EXPECT_GT(st.entries, 0u) << "loop never ran translated";
    EXPECT_GE(st.gen_refreshes, 1u)
        << "same-byte stores must be recognized by the byte compare";
    EXPECT_EQ(st.invalidations, 0u)
        << "no byte ever changed after translation";
}

TEST(BlockSmc, X86PatchOfTranslatedBlockIsObserved)
{
    auto m = Machine::gem5x86(blockConfig(true));
    RunResult r = runX86Smc(*m, 20);
    ASSERT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(r.halt_code, 99u)
        << "translated block served a stale instruction after SMC";
    ASSERT_NE(m->core().blockEngine(), nullptr);
    EXPECT_GT(m->core().blockEngine()->stats().entries, 0u);
}

TEST(BlockSmc, PathologicalPatchingMatchesInterpreter)
{
    // A real code change on every iteration, far past
    // kMaxInvalidations: the block must end up blacklisted and
    // execution falls back, still bit-identical to the interpreter.
    auto on = Machine::rocket(blockConfig(true));
    RunResult r_on = runRiscvSmcVarying(*on, 64);
    auto off = Machine::rocket(blockConfig(false));
    RunResult r_off = runRiscvSmcVarying(*off, 64);
    EXPECT_EQ(r_on.reason, r_off.reason);
    EXPECT_EQ(r_on.halt_code, r_off.halt_code);
    EXPECT_EQ(r_on.instructions, r_off.instructions);
    EXPECT_EQ(r_on.cycles, r_off.cycles);
    ASSERT_NE(on->core().blockEngine(), nullptr);
    EXPECT_GE(on->core().blockEngine()->stats().dead_blocks, 1u)
        << "pathological SMC must blacklist the block";
}

// ---------------------------------------------------------------------
// LMbench observational equivalence, all stock configs, both ISAs
// ---------------------------------------------------------------------

class BlockLmbench
    : public ::testing::TestWithParam<std::tuple<bool, int>>
{
  protected:
    static PcuConfig
    pcuOf(int idx)
    {
        switch (idx) {
          case 0: return PcuConfig::config16E();
          case 1: return PcuConfig::config8E();
          default: return PcuConfig::config8EN();
        }
    }
};

TEST_P(BlockLmbench, OnOffBitIdentical)
{
    auto [x86, pcu_idx] = GetParam();
    expectIdentical(runLmbench(x86, true, pcuOf(pcu_idx)),
                    runLmbench(x86, false, pcuOf(pcu_idx)),
                    std::string("lmbench/") + (x86 ? "x86" : "riscv"));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BlockLmbench,
    ::testing::Combine(::testing::Bool(), ::testing::Range(0, 3)),
    [](const auto &info) {
        const char *pcu = std::get<1>(info.param) == 0   ? "16E"
                          : std::get<1>(info.param) == 1 ? "8E"
                                                         : "8EN";
        return std::string(std::get<0>(info.param) ? "x86" : "riscv") +
               "_" + pcu;
    });

// ---------------------------------------------------------------------
// Attack corpus: every blocked attack faults at the same pc
// ---------------------------------------------------------------------

TEST(BlockEquivalence, AttackCorpusBothIsas)
{
    for (bool x86_isa : {false, true}) {
        for (const auto &scenario : attackScenarios(x86_isa)) {
            if (scenario.x86_only && !x86_isa)
                continue;
            expectIdentical(
                runAttackWithEngine(scenario, x86_isa, true),
                runAttackWithEngine(scenario, x86_isa, false),
                std::string("attack ") + scenario.name +
                    (x86_isa ? " (x86)" : " (riscv)"));
        }
    }
}

// ---------------------------------------------------------------------
// Check-memo flush: republication faults mid-block at the exact pc
// ---------------------------------------------------------------------

namespace {

/**
 * Gate into a baseline domain and run an add-heavy loop hot, so the
 * loop body is translated with a filled check-memo for that domain.
 * Returns the machine, the loop pc and the pc of the first add.
 */
struct HotLoop
{
    std::unique_ptr<Machine> machine;
    DomainId domain = 0;
    Addr loop_pc = 0;
    Addr add_pc = 0;
};

HotLoop
runHotLoop(bool block_on)
{
    HotLoop h;
    h.machine = Machine::rocket(blockConfig(block_on));
    Machine &m = *h.machine;
    auto &dm = m.domains();
    h.domain = dm.createBaselineDomain();

    riscv::RiscvAsm a(0x1000);
    auto target = a.newLabel();
    a.li(10, 0); // gate id 0
    Addr gate_pc = a.here();
    a.hccall(10);
    a.bind(target);
    a.li(5, 50);
    a.li(6, 0);
    auto loop = a.newLabel();
    a.bind(loop);
    h.loop_pc = a.here();
    h.add_pc = a.here();
    a.add(6, 6, 5);
    a.addi(5, 5, -1);
    a.bne(5, 0, loop);
    a.halt(6);
    a.finalize();
    dm.registerGate(gate_pc, a.labelAddr(target), h.domain);
    dm.publish();
    a.loadInto(m.mem());

    RunResult r = m.run(0x1000, 100'000);
    EXPECT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(r.halt_code, 1275u); // sum 1..50
    return h;
}

} // namespace

TEST(BlockMemoFlush, RevokeAndPublishFaultsAtExactPc)
{
    // Phase 1: run the loop hot in d1 — with the engine on, the loop
    // body is a translated block whose check-memo covers IT_ADD.
    HotLoop on = runHotLoop(true);
    ASSERT_NE(on.machine->core().blockEngine(), nullptr);
    EXPECT_GT(on.machine->core().blockEngine()->stats().memo_fills +
                  on.machine->core().blockEngine()->stats().memo_hits,
              0u)
        << "hot loop in a non-zero domain must exercise the memo";
    HotLoop off = runHotLoop(false);

    // Phase 2: revoke the loop's add and republish (pflh), then
    // re-enter the already-translated loop. The stale memo must not
    // survive the flush: both machines fault at the first add.
    for (HotLoop *h : {&on, &off}) {
        Machine &m = *h->machine;
        m.domains().revokeInstruction(h->domain, riscv::IT_ADD);
        m.domains().publish();
        m.core().reset(h->loop_pc);
        m.pcu().setGridReg(GridReg::Domain, h->domain);
        RunResult r = m.core().run(1'000);
        EXPECT_EQ(r.reason, StopReason::UnhandledFault);
        EXPECT_EQ(r.fault, FaultType::InstPrivilege);
        EXPECT_EQ(r.fault_pc, h->add_pc)
            << "fault must land on the revoked instruction itself";
    }
}

// ---------------------------------------------------------------------
// The noninterference oracle under translated execution
// ---------------------------------------------------------------------

namespace {

ContractOptions
oracleOptions()
{
    ContractOptions opt;
    opt.max_windows = 8;
    opt.max_insts = 50'000;
    opt.depth_bound = 4;
    opt.max_states = 4096;
    return opt;
}

/** A stock decomposed kernel whose replayed machines run the block
 *  engine (the oracle's step hooks exercise the fallback path; the
 *  plain oracle runs exercise translation). */
ContractScenario
blockKernelScenario(bool x86)
{
    ContractScenario scenario;
    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    scenario.build = [x86, config]() {
        auto machine = x86 ? Machine::gem5x86(blockConfig(true))
                           : Machine::rocket(blockConfig(true));
        auto ua = x86 ? makeX86Asm(layout::userCodeBase)
                      : makeRiscvAsm(layout::userCodeBase);
        ua->li(ua->regArg(0), 0);
        ua->halt(ua->regArg(0));
        ua->loadInto(machine->mem());
        KernelBuilder builder(*machine, config);
        builder.build(layout::userCodeBase);
        return machine;
    };
    auto probe = x86 ? Machine::gem5x86() : Machine::rocket();
    auto pa = x86 ? makeX86Asm(layout::userCodeBase)
                  : makeRiscvAsm(layout::userCodeBase);
    pa->li(pa->regArg(0), 0);
    pa->halt(pa->regArg(0));
    pa->loadInto(probe->mem());
    KernelBuilder builder(*probe, config);
    KernelImage image = builder.build(layout::userCodeBase);
    scenario.start_pc = image.boot_pc;
    scenario.code_regions = image.code_regions;
    return scenario;
}

ContractScenario
blockAttackScenario(const AttackScenario &s, bool x86)
{
    ContractScenario scenario;
    scenario.build = [s, x86]() {
        PreparedAttack prepared = prepareAttack(s, x86, true);
        prepared.machine->core().setBlockEngine(kHotNow);
        return std::move(prepared.machine);
    };
    PreparedAttack prepared = prepareAttack(s, x86, true);
    scenario.start_pc = prepared.payload_entry;
    scenario.start_domain = prepared.payload_domain;
    scenario.code_regions = prepared.image.code_regions;
    return scenario;
}

} // namespace

TEST(BlockContract, StockKernelStaysClean)
{
    ContractReport report =
        checkContract(blockKernelScenario(false), oracleOptions());
    EXPECT_TRUE(report.clean()) << report.text();
    EXPECT_EQ(report.plausible(), 0u) << report.text();
}

TEST(BlockContract, MaskProbeStillConfirmed)
{
    std::vector<AttackScenario> list = attackScenarios(false);
    const AttackScenario *s =
        findAttack(list, "Mask-probe side channel");
    ASSERT_NE(s, nullptr);
    ContractReport report =
        checkContract(blockAttackScenario(*s, false), oracleOptions());
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.plausible(), 0u) << report.text();
    bool confirmed_dyn = false;
    for (const ContractFinding &f : report.findings)
        if (f.check == "dyn-divergence" &&
            f.verdict == ContractVerdict::Confirmed)
            confirmed_dyn = true;
    EXPECT_TRUE(confirmed_dyn)
        << "oracle must still confirm the divergence when its "
           "replayed machines run translated:\n"
        << report.text();
}
