/**
 * @file
 * Unit and property tests for the memory system: physical memory,
 * set-associative caches, hierarchies and the trusted-memory range.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/phys_mem.hh"
#include "mem/tlb.hh"
#include "mem/trusted_memory.hh"
#include "sim/random.hh"

using namespace isagrid;

TEST(PhysMem, ReadWriteWidths)
{
    PhysMem mem(4096);
    mem.write8(0, 0xab);
    EXPECT_EQ(mem.read8(0), 0xab);
    mem.write16(8, 0x1234);
    EXPECT_EQ(mem.read16(8), 0x1234);
    mem.write32(16, 0xdeadbeef);
    EXPECT_EQ(mem.read32(16), 0xdeadbeefu);
    mem.write64(24, 0x0123456789abcdefull);
    EXPECT_EQ(mem.read64(24), 0x0123456789abcdefull);
}

TEST(PhysMem, LittleEndianLayout)
{
    PhysMem mem(64);
    mem.write32(0, 0x04030201);
    EXPECT_EQ(mem.read8(0), 1);
    EXPECT_EQ(mem.read8(1), 2);
    EXPECT_EQ(mem.read8(2), 3);
    EXPECT_EQ(mem.read8(3), 4);
}

TEST(PhysMem, BlockCopyRoundTrips)
{
    PhysMem mem(256);
    std::uint8_t src[10] = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
    mem.writeBlock(100, src, sizeof src);
    std::uint8_t dst[10] = {};
    mem.readBlock(100, dst, sizeof dst);
    EXPECT_EQ(0, std::memcmp(src, dst, sizeof src));
}

TEST(PhysMem, OutOfRangePanics)
{
    PhysMem mem(64);
    EXPECT_DEATH(mem.read64(60), "");
    EXPECT_DEATH(mem.write8(64, 1), "");
}

TEST(Cache, HitAfterFill)
{
    Cache cache({"c", 1024, 64, 2, 1});
    bool hit = true;
    cache.access(0x100, false, hit);
    EXPECT_FALSE(hit);
    cache.access(0x100, false, hit);
    EXPECT_TRUE(hit);
    // Any address in the same line hits too.
    cache.access(0x13f, false, hit);
    EXPECT_TRUE(hit);
    cache.access(0x140, false, hit);
    EXPECT_FALSE(hit);
}

TEST(Cache, LruEviction)
{
    // 2-way, line 64, 2 sets -> addresses 0, 128, 256 map to set 0.
    Cache cache({"c", 256, 64, 2, 1});
    bool hit;
    cache.access(0, false, hit);
    cache.access(128, false, hit);
    cache.access(0, false, hit); // touch 0: 128 becomes LRU
    cache.access(256, false, hit); // evicts 128
    cache.access(0, false, hit);
    EXPECT_TRUE(hit);
    cache.access(128, false, hit);
    EXPECT_FALSE(hit) << "LRU line must have been evicted";
}

TEST(Cache, WritebackCountsDirtyEvictions)
{
    Cache cache({"c", 128, 64, 1, 1}); // direct-mapped, 2 sets
    bool hit;
    cache.access(0, true, hit);        // dirty line
    cache.access(128, false, hit);     // evicts dirty line 0
    EXPECT_EQ(cache.stats().lookup("c.writebacks"), 1.0);
    cache.access(256, false, hit);     // evicts clean line 128
    EXPECT_EQ(cache.stats().lookup("c.writebacks"), 1.0);
}

TEST(Cache, FlushAllInvalidates)
{
    Cache cache({"c", 1024, 64, 4, 1});
    bool hit;
    cache.access(0, false, hit);
    cache.flushAll();
    cache.access(0, false, hit);
    EXPECT_FALSE(hit);
}

TEST(Cache, FlushLineIsSelective)
{
    Cache cache({"c", 1024, 64, 4, 1});
    bool hit;
    cache.access(0, false, hit);
    cache.access(64, false, hit);
    cache.flushLine(0);
    cache.access(64, false, hit);
    EXPECT_TRUE(hit);
    cache.access(0, false, hit);
    EXPECT_FALSE(hit);
}

TEST(Cache, ContainsDoesNotPerturb)
{
    Cache cache({"c", 256, 64, 2, 1});
    bool hit;
    cache.access(0, false, hit);
    std::uint64_t hits_before = cache.hits();
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_EQ(cache.hits(), hits_before);
}

TEST(Cache, InvalidGeometryIsFatal)
{
    EXPECT_DEATH(Cache({"c", 100, 60, 2, 1}), "");  // non-pow2 line
    EXPECT_DEATH(Cache({"c", 192, 64, 2, 1}), "");  // non-pow2 sets
}

/** Property: hit rate of a working set that fits is perfect. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGeometry, FittingWorkingSetAlwaysHitsAfterWarmup)
{
    auto [size_kb, assoc] = GetParam();
    Cache cache({"c", std::uint64_t(size_kb) * 1024, 64,
                 std::uint32_t(assoc), 1});
    std::uint64_t lines = std::uint64_t(size_kb) * 1024 / 64;
    bool hit;
    for (std::uint64_t i = 0; i < lines; ++i)
        cache.access(i * 64, false, hit);
    for (std::uint64_t i = 0; i < lines; ++i) {
        cache.access(i * 64, false, hit);
        EXPECT_TRUE(hit) << "line " << i;
    }
}

TEST_P(CacheGeometry, RandomAccessesNeverCrash)
{
    auto [size_kb, assoc] = GetParam();
    Cache cache({"c", std::uint64_t(size_kb) * 1024, 64,
                 std::uint32_t(assoc), 1});
    SplitMix64 rng(42);
    bool hit;
    for (int i = 0; i < 5000; ++i)
        cache.access(rng.below(1 << 22), rng.chance(1, 3), hit);
    EXPECT_EQ(cache.hits() + cache.misses(), 5000u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(1, 4, 32),
                       ::testing::Values(1, 2, 4, 16)));

TEST(CacheHierarchy, LatencyAccumulatesThroughLevels)
{
    CacheHierarchy h({{"l1", 1024, 64, 2, 2}, {"l2", 4096, 64, 4, 20}},
                     100);
    // Cold: L1 miss + L2 miss + memory.
    EXPECT_EQ(h.access(0, false), 2u + 20u + 100u);
    // Warm: L1 hit only.
    EXPECT_EQ(h.access(0, false), 2u);
    EXPECT_EQ(h.missLatency(), 122u);
}

TEST(CacheHierarchy, L2CatchesL1Evictions)
{
    // Tiny L1 (1 line), big L2.
    CacheHierarchy h({{"l1", 64, 64, 1, 1}, {"l2", 8192, 64, 4, 10}},
                     100);
    h.access(0, false);
    h.access(64, false); // evicts 0 from L1, still in L2
    EXPECT_EQ(h.access(0, false), 1u + 10u);
}

TEST(CacheHierarchy, FlushAllReachesEveryLevel)
{
    CacheHierarchy h({{"l1", 1024, 64, 2, 1}, {"l2", 4096, 64, 4, 5}},
                     50);
    h.access(0, false);
    h.flushAll();
    EXPECT_EQ(h.access(0, false), 1u + 5u + 50u);
}

TEST(TrustedMemory, DisabledAllowsEverything)
{
    TrustedMemory tmem;
    EXPECT_FALSE(tmem.enabled());
    EXPECT_TRUE(tmem.softwareAccessAllowed(5, 0x1000, 8));
}

TEST(TrustedMemory, Domain0AlwaysAllowed)
{
    TrustedMemory tmem;
    tmem.configure(0x10000, 0x20000);
    EXPECT_TRUE(tmem.softwareAccessAllowed(0, 0x10000, 8));
    EXPECT_FALSE(tmem.softwareAccessAllowed(1, 0x10000, 8));
}

TEST(TrustedMemory, BoundaryConditions)
{
    TrustedMemory tmem;
    tmem.configure(0x10000, 0x20000);
    // Just below, just above, straddling.
    EXPECT_TRUE(tmem.softwareAccessAllowed(1, 0xfff8, 8));
    EXPECT_FALSE(tmem.softwareAccessAllowed(1, 0xfff9, 8));
    EXPECT_TRUE(tmem.softwareAccessAllowed(1, 0x20000, 8));
    EXPECT_FALSE(tmem.softwareAccessAllowed(1, 0x1ffff, 8));
    EXPECT_FALSE(tmem.softwareAccessAllowed(1, 0x18000, 1));
}

TEST(TrustedMemory, RequiresPowerOfTwoSizeAndAlignment)
{
    TrustedMemory tmem;
    EXPECT_DEATH(tmem.configure(0x1000, 0x1000 + 0x300), "");
    EXPECT_DEATH(tmem.configure(0x800, 0x800 + 0x1000), "");
    tmem.configure(0x2000, 0x3000); // 4K-aligned 4K region: fine
    EXPECT_TRUE(tmem.enabled());
}

/** Property sweep: overlap is symmetric with the naive definition. */
TEST(TrustedMemory, OverlapMatchesNaiveDefinition)
{
    TrustedMemory tmem;
    tmem.configure(0x400, 0x800);
    SplitMix64 rng(3);
    for (int i = 0; i < 2000; ++i) {
        Addr addr = rng.below(0x1000);
        std::size_t len = 1 + rng.below(16);
        bool naive = false;
        for (std::size_t k = 0; k < len; ++k)
            naive |= (addr + k >= 0x400 && addr + k < 0x800);
        EXPECT_EQ(tmem.overlaps(addr, len), naive)
            << std::hex << addr << "+" << len;
    }
}

TEST(Tlb, HitAfterWalk)
{
    Tlb tlb({"t", 8, 2, 4096, 50});
    EXPECT_EQ(tlb.access(0x1000), 50u); // walk
    EXPECT_EQ(tlb.access(0x1ff8), 0u);  // same page
    EXPECT_EQ(tlb.access(0x2000), 50u); // next page
    EXPECT_EQ(tlb.misses(), 2u);
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(Tlb, FlushAllForcesRewalks)
{
    Tlb tlb({"t", 8, 2, 4096, 50});
    tlb.access(0x1000);
    tlb.flushAll();
    EXPECT_EQ(tlb.access(0x1000), 50u);
}

TEST(Tlb, FlushPageIsSelective)
{
    Tlb tlb({"t", 8, 2, 4096, 50});
    tlb.access(0x1000);
    tlb.access(0x2000);
    tlb.flushPage(0x1234);
    EXPECT_EQ(tlb.access(0x2000), 0u);
    EXPECT_EQ(tlb.access(0x1000), 50u);
}

TEST(Tlb, LruWithinSet)
{
    // 2-way, 2 sets: pages 0, 2, 4 map to set 0.
    Tlb tlb({"t", 4, 2, 4096, 50});
    tlb.access(0x0000);
    tlb.access(0x2000);
    tlb.access(0x0000);          // page 0 most recent
    tlb.access(0x4000);          // evicts page 2
    EXPECT_EQ(tlb.access(0x0000), 0u);
    EXPECT_EQ(tlb.access(0x2000), 50u);
}

TEST(Tlb, BadGeometryIsFatal)
{
    EXPECT_DEATH(Tlb({"t", 7, 2, 4096, 10}), "");
    EXPECT_DEATH(Tlb({"t", 12, 2, 4096, 10}), ""); // 6 sets: not pow2
}
