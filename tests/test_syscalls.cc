/**
 * @file
 * Functional tests of every mini-kernel syscall, driven from user-mode
 * guest programs on both ISAs and in both protection modes. The user
 * program verifies kernel behaviour itself (copied bytes, fd slots,
 * pipe FIFO order, signal control flow) and halts with a pass code.
 */

#include <gtest/gtest.h>

#include "kernel/kernel_builder.hh"

using namespace isagrid;

namespace {

constexpr std::uint64_t passCode = 0x600d;
constexpr std::uint64_t failBase = 0xf000;

struct SysEnv
{
    SysEnv(bool x86, KernelMode mode)
        : machine(x86 ? Machine::gem5x86() : Machine::rocket())
    {
        config.mode = mode;
    }

    std::unique_ptr<AsmIface>
    userAsm()
    {
        return machine->isa().name() == "x86"
                   ? makeX86Asm(layout::userCodeBase)
                   : makeRiscvAsm(layout::userCodeBase);
    }

    RunResult
    buildAndRun(AsmIface &a)
    {
        a.loadInto(machine->mem());
        KernelBuilder builder(*machine, config);
        KernelImage image = builder.build(layout::userCodeBase);
        return machine->run(image.boot_pc, 20'000'000);
    }

    std::unique_ptr<Machine> machine;
    KernelConfig config;
};

/** halt(fail code k) unless ra == rb. */
void
expectEq(AsmIface &a, unsigned ra, unsigned rb, unsigned k)
{
    auto ok = a.newLabel();
    auto bad = a.newLabel();
    a.bne(ra, rb, bad);
    a.jmp(ok);
    a.bind(bad);
    a.li(a.regArg(4), failBase + k);
    a.halt(a.regArg(4));
    a.bind(ok);
}

void
finishPass(AsmIface &a)
{
    a.li(a.regArg(0), passCode);
    a.halt(a.regArg(0));
}

} // namespace

class Syscalls
    : public ::testing::TestWithParam<std::tuple<bool, KernelMode>>
{
  public:
    static std::string
    caseName(const ::testing::TestParamInfo<std::tuple<bool, KernelMode>>
                 &info)
    {
        std::string n = std::get<0>(info.param) ? "x86" : "riscv";
        n += std::get<1>(info.param) == KernelMode::Monolithic
                 ? "Native" : "Decomposed";
        return n;
    }

  protected:
    void
    runCase(const std::function<void(AsmIface &)> &emit)
    {
        SysEnv env(std::get<0>(GetParam()), std::get<1>(GetParam()));
        auto ap = env.userAsm();
        ap->li(ap->regSp(), layout::userStackTop);
        emit(*ap);
        RunResult r = env.buildAndRun(*ap);
        ASSERT_EQ(r.reason, StopReason::Halted)
            << "fault=" << faultName(r.fault);
        EXPECT_EQ(r.halt_code, passCode)
            << "guest self-check " << std::hex << r.halt_code;
    }
};

TEST_P(Syscalls, GetpidReturnsConstant)
{
    runCase([](AsmIface &a) {
        a.li(a.regArg(0), std::uint64_t(Sys::Getpid));
        a.syscallInst();
        a.li(a.regTmp(0), 1234);
        expectEq(a, a.regArg(0), a.regTmp(0), 1);
        finishPass(a);
    });
}

TEST_P(Syscalls, ReadCopiesKernelBufferBytes)
{
    runCase([](AsmIface &a) {
        // The loader fills the kernel IO buffer with marker qwords
        // 0x4b4b4b4b'0000'0000 | address.
        a.li(a.regArg(0), std::uint64_t(Sys::Read));
        a.li(a.regArg(1), layout::userDataBase);
        a.li(a.regArg(2), 4); // four qwords
        a.syscallInst();
        // Verify the third copied qword.
        a.li(a.regUser(0), layout::userDataBase);
        a.load64(a.regUser(1), a.regUser(0), 16);
        a.li(a.regTmp(0),
             0x4b4b4b4b00000000ull | (layout::kernelIoBuffer + 16));
        expectEq(a, a.regUser(1), a.regTmp(0), 2);
        finishPass(a);
    });
}

TEST_P(Syscalls, WriteThenReadRoundTrips)
{
    runCase([](AsmIface &a) {
        // Place a pattern in user memory, write it into the kernel,
        // scribble over the user copy, then read it back.
        a.li(a.regUser(0), layout::userDataBase);
        a.li(a.regUser(1), 0xfeedface);
        a.store64(a.regUser(1), a.regUser(0), 0);
        a.li(a.regArg(0), std::uint64_t(Sys::Write));
        a.li(a.regArg(1), layout::userDataBase);
        a.li(a.regArg(2), 1);
        a.syscallInst();
        a.li(a.regUser(1), 0);
        a.store64(a.regUser(1), a.regUser(0), 0);
        a.li(a.regArg(0), std::uint64_t(Sys::Read));
        a.li(a.regArg(1), layout::userDataBase);
        a.li(a.regArg(2), 1);
        a.syscallInst();
        a.load64(a.regUser(1), a.regUser(0), 0);
        a.li(a.regTmp(0), 0xfeedface);
        expectEq(a, a.regUser(1), a.regTmp(0), 3);
        finishPass(a);
    });
}

TEST_P(Syscalls, OpenAllocatesSequentialSlots)
{
    runCase([](AsmIface &a) {
        a.li(a.regArg(0), std::uint64_t(Sys::Open));
        a.li(a.regArg(1), 0x111);
        a.syscallInst();
        a.li(a.regTmp(0), 0);
        expectEq(a, a.regArg(0), a.regTmp(0), 4); // first slot
        a.li(a.regArg(0), std::uint64_t(Sys::Open));
        a.li(a.regArg(1), 0x222);
        a.syscallInst();
        a.li(a.regTmp(0), 1);
        expectEq(a, a.regArg(0), a.regTmp(0), 5); // second slot
        // Close slot 0 and reopen: slot 0 is reused.
        a.li(a.regArg(0), std::uint64_t(Sys::Close));
        a.li(a.regArg(1), 0);
        a.syscallInst();
        a.li(a.regArg(0), std::uint64_t(Sys::Open));
        a.li(a.regArg(1), 0x333);
        a.syscallInst();
        a.li(a.regTmp(0), 0);
        expectEq(a, a.regArg(0), a.regTmp(0), 6);
        finishPass(a);
    });
}

TEST_P(Syscalls, PipeIsFifo)
{
    runCase([](AsmIface &a) {
        for (std::uint64_t v : {0xaaull, 0xbbull}) {
            a.li(a.regArg(0), std::uint64_t(Sys::PipeWrite));
            a.li(a.regArg(1), v);
            a.syscallInst();
        }
        a.li(a.regArg(0), std::uint64_t(Sys::PipeRead));
        a.syscallInst();
        a.li(a.regTmp(0), 0xaa);
        expectEq(a, a.regArg(0), a.regTmp(0), 7);
        a.li(a.regArg(0), std::uint64_t(Sys::PipeRead));
        a.syscallInst();
        a.li(a.regTmp(0), 0xbb);
        expectEq(a, a.regArg(0), a.regTmp(0), 8);
        finishPass(a);
    });
}

TEST_P(Syscalls, SignalDeliveryRunsHandlerThenResumes)
{
    runCase([](AsmIface &a) {
        unsigned flag = a.regUser(3);
        a.li(flag, 0);
        auto past = a.newLabel();
        a.jmp(past);
        // --- user signal handler: set the flag, sigreturn ---
        Addr handler = a.here();
        a.li(flag, 1);
        a.li(a.regArg(0), std::uint64_t(Sys::SigReturn));
        a.syscallInst();
        a.bind(past);
        a.li(a.regArg(0), std::uint64_t(Sys::SigInstall));
        a.li(a.regArg(1), handler);
        a.syscallInst();
        a.li(a.regArg(0), std::uint64_t(Sys::SigRaise));
        a.syscallInst();
        // Resumed here: the handler must have run exactly once.
        a.li(a.regTmp(0), 1);
        expectEq(a, flag, a.regTmp(0), 9);
        finishPass(a);
    });
}

TEST_P(Syscalls, CtxSwitchRoundTripRestoresRegisters)
{
    runCase([](AsmIface &a) {
        // Counter must live in arg2 (the kernel swaps regUser).
        a.li(a.regUser(0), 0x1234);
        a.li(a.regArg(0), std::uint64_t(Sys::CtxSwitch));
        a.syscallInst();
        a.li(a.regArg(0), std::uint64_t(Sys::CtxSwitch));
        a.syscallInst();
        // Two switches: back on TCB 0 with regUser restored.
        a.li(a.regTmp(0), 0x1234);
        expectEq(a, a.regUser(0), a.regTmp(0), 10);
        finishPass(a);
    });
}

TEST_P(Syscalls, MmapTouchWritesPtes)
{
    SysEnv env(std::get<0>(GetParam()), std::get<1>(GetParam()));
    auto ap = env.userAsm();
    AsmIface &a = *ap;
    a.li(a.regSp(), layout::userStackTop);
    a.li(a.regArg(0), std::uint64_t(Sys::MmapTouch));
    a.li(a.regArg(1), 5);
    a.syscallInst();
    finishPass(a);
    RunResult r = env.buildAndRun(a);
    ASSERT_EQ(r.reason, StopReason::Halted);
    ASSERT_EQ(r.halt_code, passCode);
    // PTE slot 5 (and the next seven) hold the PTE bits.
    EXPECT_EQ(env.machine->mem().read64(layout::pageTableArea + 5 * 8),
              0x627u);
    EXPECT_EQ(env.machine->mem().read64(layout::pageTableArea + 5 * 8 +
                                        56),
              0x627u);
}

TEST_P(Syscalls, ServicesReturnAndIsolate)
{
    SysEnv env(std::get<0>(GetParam()), std::get<1>(GetParam()));
    auto ap = env.userAsm();
    AsmIface &a = *ap;
    a.li(a.regSp(), layout::userStackTop);
    for (Sys s : {Sys::ServiceCpuid, Sys::ServiceMtrr, Sys::ServicePmc0,
                  Sys::ServicePmc1}) {
        a.li(a.regArg(0), std::uint64_t(s));
        a.syscallInst();
    }
    finishPass(a);
    RunResult r = env.buildAndRun(a);
    ASSERT_EQ(r.reason, StopReason::Halted)
        << "fault=" << faultName(r.fault);
    EXPECT_EQ(r.halt_code, passCode);
    if (std::get<1>(GetParam()) == KernelMode::Decomposed) {
        // Each service crossed into its own domain and back.
        EXPECT_GE(env.machine->pcu().switches(), 1 + 2 * 4u);
    }
}

TEST_P(Syscalls, UnknownSyscallNumberReturnsError)
{
    runCase([](AsmIface &a) {
        a.li(a.regArg(0), 29); // clamped to the table's invalid range
        a.syscallInst();
        a.li(a.regTmp(0), ~0ull);
        expectEq(a, a.regArg(0), a.regTmp(0), 11);
        finishPass(a);
    });
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Syscalls,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(KernelMode::Monolithic,
                                         KernelMode::Decomposed)),
    Syscalls::caseName);
