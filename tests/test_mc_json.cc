/**
 * @file
 * Golden-file lock on the isagrid-mc --json report schema.
 *
 * CI and the contract checker's comparison scripts parse this output;
 * field renames or formatting drift must show up as a test diff, not
 * as a silent breakage. The golden file is
 * tests/data/mc_report.golden.json; regenerate it deliberately with
 * ISAGRID_REGEN_GOLDEN=1 after an intentional schema change and
 * commit the diff.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "modelcheck/modelcheck.hh"

using namespace isagrid;

namespace {

std::string
goldenPath()
{
    return std::string(TEST_DATA_DIR) + "/mc_report.golden.json";
}

/**
 * A result exercising both severities, a multi-step trace covering
 * every step kind field, and message characters that need escaping.
 */
McResult
sampleResult()
{
    McResult result;

    McViolation v;
    v.severity = Severity::Violation;
    v.check = "mc-mask-composition";
    v.domain = 3;
    v.addr = 0x1040;
    v.message = "masked writes by domains {1,3} compose to flip "
                "0xffffffffffdfffff, covered by no single mask";
    TraceStep call;
    call.kind = TraceStep::Kind::GateCallS;
    call.pc = 0x2000;
    call.in_image = true;
    call.gate = 2;
    call.domain_before = 1;
    call.domain_after = 3;
    call.note = "push frame";
    v.trace.push_back(call);
    TraceStep write;
    write.kind = TraceStep::Kind::CsrWrite;
    write.csr_addr = 0x100;
    write.flip = 0x2;
    write.masked = true;
    write.domain_before = 3;
    write.domain_after = 3;
    v.trace.push_back(write);
    result.findings.push_back(v);

    McViolation w;
    w.severity = Severity::Warning;
    w.check = "mc-domain0-entry";
    w.domain = 2;
    w.addr = 0x3000;
    w.message = "gate 7 reaches domain-0 (\"trusted\" path)\n"
                "second line with a backslash \\";
    result.findings.push_back(w);

    result.stats.states = 4096;
    result.stats.transitions = 16384;
    result.stats.peak_frontier = 512;
    result.stats.depth_reached = 6;
    return result;
}

} // namespace

TEST(McJson, ReportMatchesGoldenFile)
{
    std::string actual = sampleResult().json();

    if (std::getenv("ISAGRID_REGEN_GOLDEN")) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << actual << "\n";
        GTEST_SKIP() << "golden file regenerated at " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in) << "missing golden file " << goldenPath()
                    << " (run once with ISAGRID_REGEN_GOLDEN=1)";
    std::stringstream buf;
    buf << in.rdbuf();
    std::string expected = buf.str();
    while (!expected.empty() && expected.back() == '\n')
        expected.pop_back();

    EXPECT_EQ(actual, expected)
        << "isagrid-mc --json schema drifted; if intentional, "
           "regenerate with ISAGRID_REGEN_GOLDEN=1 and commit";
}

TEST(McJson, SummaryObjectMatchesVerifyContract)
{
    McResult result = sampleResult();
    EXPECT_EQ(result.violations(), 1u);
    EXPECT_EQ(result.warnings(), 1u);
    EXPECT_FALSE(result.clean());

    std::string json = result.json();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"summary\":{\"violations\":1,\"warnings\":1,"
                        "\"total\":2,\"recorded\":2}"),
              std::string::npos)
        << json;
    // Escapes survive the rendering.
    EXPECT_NE(json.find("\\\"trusted\\\""), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
    EXPECT_NE(json.find("\\\\"), std::string::npos);
}

TEST(McJson, EmptyResultHasZeroSummary)
{
    McResult result;
    EXPECT_TRUE(result.clean());
    EXPECT_NE(result.json().find(
                  "\"summary\":{\"violations\":0,\"warnings\":0,"
                  "\"total\":0,\"recorded\":0}"),
              std::string::npos);
}
