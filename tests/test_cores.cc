/**
 * @file
 * Core timing-model tests: determinism, structural penalties of the
 * in-order model, dataflow behaviour of the O3 model, trap round
 * trips and the privilege-level interlock.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cpu/machine.hh"
#include "isa/riscv/assembler.hh"
#include "isa/riscv/opcodes.hh"
#include "isa/x86/assembler.hh"
#include "isa/x86/opcodes.hh"
#include "kernel/layout.hh"

using namespace isagrid;

namespace {

/** Run an RV64 snippet and return the result. */
RunResult
runRiscv(Machine &m, const std::function<void(riscv::RiscvAsm &)> &emit,
         std::uint64_t max = 1'000'000)
{
    riscv::RiscvAsm a(0x1000);
    emit(a);
    a.loadInto(m.mem());
    return m.run(0x1000, max);
}

RunResult
runX86(Machine &m, const std::function<void(x86::X86Asm &)> &emit,
       std::uint64_t max = 1'000'000)
{
    x86::X86Asm a(0x1000);
    emit(a);
    a.loadInto(m.mem());
    return m.run(0x1000, max);
}

} // namespace

TEST(CoreDeterminism, IdenticalRunsProduceIdenticalCycles)
{
    auto emit = [](riscv::RiscvAsm &a) {
        a.li(5, 1000);
        auto loop = a.newLabel();
        a.bind(loop);
        a.addi(6, 6, 1);
        a.addi(5, 5, -1);
        a.bne(5, 0, loop);
        a.halt(6);
    };
    auto m1 = Machine::rocket();
    auto m2 = Machine::rocket();
    RunResult r1 = runRiscv(*m1, emit);
    RunResult r2 = runRiscv(*m2, emit);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.instructions, r2.instructions);
}

TEST(CoreInOrder, StraightLineCodeIsNearCpiOne)
{
    auto m = Machine::rocket();
    RunResult r = runRiscv(*m, [](riscv::RiscvAsm &a) {
        a.li(5, 100);
        auto loop = a.newLabel();
        a.bind(loop);
        for (int i = 0; i < 12; ++i)
            a.addi(6, 6, 1);
        a.addi(5, 5, -1);
        a.bne(5, 0, loop);
        a.halt(6);
    });
    ASSERT_EQ(r.reason, StopReason::Halted);
    // CPI ~1 plus the loop branch and cold-start fills.
    double cpi = double(r.cycles) / double(r.instructions);
    EXPECT_LT(cpi, 2.0);
    EXPECT_GE(cpi, 1.0);
}

TEST(CoreInOrder, TakenBranchesCostMore)
{
    // Tight loop (taken branch every 2nd instruction) vs a long body
    // (branch amortized over 17 instructions).
    auto tight = Machine::rocket();
    RunResult rt = runRiscv(*tight, [](riscv::RiscvAsm &a) {
        a.li(5, 2000);
        auto loop = a.newLabel();
        a.bind(loop);
        a.addi(5, 5, -1);
        a.bne(5, 0, loop); // taken 1999 times
        a.halt(5);
    });
    auto amortized = Machine::rocket();
    RunResult rs = runRiscv(*amortized, [](riscv::RiscvAsm &a) {
        a.li(5, 250);
        auto loop = a.newLabel();
        a.bind(loop);
        for (int i = 0; i < 16; ++i)
            a.addi(6, 6, 1);
        a.addi(5, 5, -1);
        a.bne(5, 0, loop);
        a.halt(5);
    });
    double cpi_tight = double(rt.cycles) / double(rt.instructions);
    double cpi_amortized = double(rs.cycles) / double(rs.instructions);
    EXPECT_GT(cpi_tight, cpi_amortized + 0.5);
}

TEST(CoreInOrder, DcacheMissesStall)
{
    auto m = Machine::rocket();
    RunResult r = runRiscv(*m, [](riscv::RiscvAsm &a) {
        a.li(5, 100);
        a.li(6, 0x100000);
        a.li(28, 4096); // stride (new line and set every time)
        auto loop = a.newLabel();
        a.bind(loop);
        a.ld(7, 6, 0);
        a.add(6, 6, 28);
        a.addi(5, 5, -1);
        a.bne(5, 0, loop);
        a.halt(5);
    });
    // 100 misses at >120 cycles each dominate.
    EXPECT_GT(r.cycles, 100 * 100u);
}

TEST(CoreO3, IndependentOpsRetireSuperscalar)
{
    auto m = Machine::gem5x86();
    RunResult r = runX86(*m, [](x86::X86Asm &a) {
        using namespace x86;
        // 8 independent dependency chains inside a warm loop.
        a.movImm(RBP, 200);
        auto loop = a.newLabel();
        a.bind(loop);
        for (int i = 0; i < 32; ++i)
            a.addi(unsigned(R8 + (i % 8)), 1);
        a.addi(RBP, -1);
        a.jnz(loop);
        a.halt(RAX);
    });
    double ipc = double(r.instructions) / double(r.cycles);
    EXPECT_GT(ipc, 2.0) << "independent ops must overlap";
}

TEST(CoreO3, DependencyChainSerializes)
{
    auto m = Machine::gem5x86();
    RunResult r = runX86(*m, [](x86::X86Asm &a) {
        using namespace x86;
        for (int i = 0; i < 200; ++i)
            a.imul(RAX, RAX); // 3-cycle latency chain
        a.halt(RAX);
    });
    double cpi = double(r.cycles) / double(r.instructions);
    EXPECT_GT(cpi, 2.0) << "a serial imul chain runs at ~3 CPI";
}

TEST(CoreO3, StoreToLoadForwardingIsFast)
{
    auto fwd = Machine::gem5x86();
    RunResult rf = runX86(*fwd, [](x86::X86Asm &a) {
        using namespace x86;
        a.movImm(RSI, 0x100000);
        for (int i = 0; i < 100; ++i) {
            a.store64(RAX, RSI, 0);
            a.load64(RBX, RSI, 0); // forwarded
            a.add(RAX, RBX);
        }
        a.halt(RAX);
    });
    auto chase = Machine::gem5x86();
    RunResult rc = runX86(*chase, [](x86::X86Asm &a) {
        using namespace x86;
        a.movImm(RSI, 0x100000);
        for (int i = 0; i < 100; ++i) {
            a.load64(RBX, RSI, 0); // always misses forwarding window
            a.add(RAX, RBX);
            a.addi(RSI, 4096);
        }
        a.halt(RAX);
    });
    EXPECT_LT(rf.cycles, rc.cycles);
}

TEST(CoreO3, SerializingInstructionsDrainThePipeline)
{
    auto plain = Machine::gem5x86();
    RunResult rp = runX86(*plain, [](x86::X86Asm &a) {
        using namespace x86;
        for (int i = 0; i < 100; ++i)
            a.addi(R8, 1);
        a.halt(RAX);
    });
    auto fenced = Machine::gem5x86();
    RunResult rf = runX86(*fenced, [](x86::X86Asm &a) {
        using namespace x86;
        for (int i = 0; i < 100; ++i) {
            a.addi(R8, 1);
            a.cpuid(); // serializing
        }
        a.halt(RAX);
    });
    EXPECT_GT(rf.cycles, rp.cycles + 100 * 20u);
}

TEST(CorePrivilege, UserModeCannotRunPrivilegedInstructions)
{
    auto m = Machine::rocket();
    // Drop to user mode via sret, then try sfence.vma.
    RunResult r = runRiscv(*m, [](riscv::RiscvAsm &a) {
        using namespace riscv;
        auto user = a.newLabel();
        a.li(5, 0x1000 + 9 * 4); // address of user code (computed below)
        a.csrw(CSR_SEPC, 5);
        a.li(5, SSTATUS_SPP);
        a.csrrc(0, CSR_SSTATUS, 5); // previous privilege = user
        a.sret();
        // kernel never reaches here
        a.nop();
        a.nop();
        a.nop();
        a.bind(user);
        a.sfenceVma(); // must fault: user mode
        a.halt(0);
    });
    EXPECT_EQ(r.reason, StopReason::UnhandledFault);
    EXPECT_EQ(r.fault, FaultType::IllegalInstruction);
}

TEST(CorePrivilege, UserModeCannotTouchSupervisorCsrs)
{
    auto m = Machine::gem5x86();
    RunResult r = runX86(*m, [](x86::X86Asm &a) {
        using namespace x86;
        auto setup = a.newLabel();
        a.jmp(setup);
        // --- user-mode code ---
        Addr user = a.here();
        a.movToCr(3, RAX); // must fault: mov to CR3 from user mode
        a.halt(RAX);
        // --- supervisor setup: drop to user at `user` ---
        a.bind(setup);
        a.movImm(RAX, 0);
        a.movImm(RCX, CSR_TRAP_MODE);
        a.wrmsr();
        a.movImm(RAX, user);
        a.movImm(RCX, CSR_TRAP_RIP);
        a.wrmsr();
        a.iretq();
    });
    EXPECT_EQ(r.reason, StopReason::UnhandledFault);
    EXPECT_EQ(r.fault, FaultType::IllegalInstruction);
    EXPECT_EQ(m->core().state().mode, PrivMode::Supervisor)
        << "trap entry re-raised the privilege level";
}

TEST(CoreMarks, SimmarksRecordCycleAndInstruction)
{
    auto m = Machine::rocket();
    RunResult r = runRiscv(*m, [](riscv::RiscvAsm &a) {
        a.li(10, 7);
        a.simmark(10);
        for (int i = 0; i < 10; ++i)
            a.nop();
        a.li(10, 8);
        a.simmark(10);
        a.halt(0);
    });
    ASSERT_EQ(r.reason, StopReason::Halted);
    const auto &marks = m->core().marks();
    ASSERT_EQ(marks.size(), 2u);
    EXPECT_EQ(marks[0].value, 7u);
    EXPECT_EQ(marks[1].value, 8u);
    EXPECT_EQ(marks[1].instructions - marks[0].instructions, 12u);
    EXPECT_GT(marks[1].cycle, marks[0].cycle);
}

TEST(CoreFaults, WbinvdFlushesTheCaches)
{
    auto m = Machine::gem5x86();
    RunResult r = runX86(*m, [](x86::X86Asm &a) {
        using namespace x86;
        a.movImm(RSI, 0x200000);
        a.load64(RAX, RSI, 0); // warm a line
        a.wbinvd();
        a.halt(RAX);
    });
    ASSERT_EQ(r.reason, StopReason::Halted);
    EXPECT_FALSE(m->dcacheHierarchy().l1Contains(0x200000));
}

TEST(CoreFaults, FetchPastMemoryEndStops)
{
    auto m = Machine::rocket();
    m->core().reset(m->mem().size() + 0x1000);
    RunResult r = m->core().run(10);
    EXPECT_EQ(r.reason, StopReason::UnhandledFault);
    EXPECT_EQ(r.fault, FaultType::MemoryFault);
}

TEST(CoreFaults, LoadPastMemoryEndFaults)
{
    auto m = Machine::rocket();
    RunResult r = runRiscv(*m, [&](riscv::RiscvAsm &a) {
        a.li(5, m->mem().size() - 4);
        a.ld(6, 5, 0);
        a.halt(6);
    });
    EXPECT_EQ(r.reason, StopReason::UnhandledFault);
    EXPECT_EQ(r.fault, FaultType::MemoryFault);
}

TEST(CoreStats, CountersMatchProgramShape)
{
    auto m = Machine::rocket();
    runRiscv(*m, [](riscv::RiscvAsm &a) {
        a.li(5, 0x100000);
        a.ld(6, 5, 0);
        a.sd(6, 5, 8);
        a.ld(7, 5, 16);
        a.halt(7);
    });
    auto &core = m->core();
    EXPECT_EQ(core.stats().lookup("core.loads"), 2.0);
    EXPECT_EQ(core.stats().lookup("core.stores"), 1.0);
}

TEST(CoreReset, ClearsStateBetweenRuns)
{
    auto m = Machine::rocket();
    runRiscv(*m, [](riscv::RiscvAsm &a) {
        a.li(10, 1);
        a.halt(10);
    });
    Cycle c1 = m->core().cycles();
    m->core().reset(0x1000);
    EXPECT_EQ(m->core().cycles(), 0u);
    EXPECT_EQ(m->core().state().pc, 0x1000u);
    EXPECT_GT(c1, 0u);
}

TEST(CoreTrace, TraceStreamRecordsExecution)
{
    auto m = Machine::rocket();
    std::ostringstream trace;
    m->core().setTrace(&trace);
    runRiscv(*m, [](riscv::RiscvAsm &a) {
        a.li(5, 7);
        a.addi(5, 5, 1);
        a.csrw(riscv::CSR_SSCRATCH, 5);
        a.halt(5);
    });
    m->core().setTrace(nullptr);
    std::string out = trace.str();
    EXPECT_NE(out.find("addi"), std::string::npos);
    EXPECT_NE(out.find("csrrw"), std::string::npos);
    EXPECT_NE(out.find("csr:0x140"), std::string::npos);
    EXPECT_NE(out.find("halt"), std::string::npos);
    EXPECT_NE(out.find(" d0 "), std::string::npos); // domain column
}

TEST(CoreTrace, FaultsAppearInTrace)
{
    auto m = Machine::gem5x86();
    std::ostringstream trace;
    m->core().setTrace(&trace);
    runX86(*m, [](x86::X86Asm &a) {
        a.rawBytes({0xff, 0xff, 0xff}); // undecodable
    });
    m->core().setTrace(nullptr);
    EXPECT_NE(trace.str().find(">>> illegal-instruction"),
              std::string::npos);
}

TEST(CoreTlb, AddressSpaceSwitchFlushesAndRefills)
{
    auto m = Machine::rocket();
    std::uint64_t walks_before;
    RunResult r = runRiscv(*m, [](riscv::RiscvAsm &a) {
        using namespace riscv;
        a.li(5, 0x100000);
        a.ld(6, 5, 0);  // walk page A
        a.ld(6, 5, 8);  // hit
        a.li(7, 0x41000);
        a.csrw(CSR_SATP, 7); // address-space switch: flush TLBs
        a.ld(6, 5, 16); // must re-walk page A
        a.halt(6);
    });
    ASSERT_EQ(r.reason, StopReason::Halted);
    walks_before = m->dataTlb().misses();
    EXPECT_EQ(walks_before, 2u)
        << "one cold walk plus one post-switch re-walk";
}

TEST(CoreTlb, SfenceVmaFlushes)
{
    auto m = Machine::rocket();
    runRiscv(*m, [](riscv::RiscvAsm &a) {
        a.li(5, 0x100000);
        a.ld(6, 5, 0);
        a.sfenceVma();
        a.ld(6, 5, 8);
        a.halt(6);
    });
    EXPECT_EQ(m->dataTlb().misses(), 2u);
}

TEST(CoreTlb, InvlpgIsPageSelective)
{
    auto m = Machine::gem5x86();
    runX86(*m, [](x86::X86Asm &a) {
        using namespace x86;
        a.movImm(RSI, 0x100000);
        a.movImm(RDI, 0x200000);
        a.load64(RAX, RSI, 0); // walk page A
        a.load64(RBX, RDI, 0); // walk page B
        a.movImm(RDX, 0x100000);
        a.invlpg(RDX);         // evict page A only
        a.load64(RAX, RSI, 0); // re-walk A
        a.load64(RBX, RDI, 0); // still hits
        a.halt(RAX);
    });
    EXPECT_EQ(m->dataTlb().misses(), 3u);
}

TEST(CoreTlb, WalkLatencyShowsInCycles)
{
    // Two identical loads to different pages vs the same page.
    auto two_pages = Machine::rocket();
    RunResult rp = runRiscv(*two_pages, [](riscv::RiscvAsm &a) {
        a.li(5, 0x100000);
        a.li(6, 0x200000);
        a.ld(7, 5, 0);
        a.ld(7, 6, 0);
        a.halt(7);
    });
    auto one_page = Machine::rocket();
    RunResult rs = runRiscv(*one_page, [](riscv::RiscvAsm &a) {
        a.li(5, 0x100000);
        a.li(6, 0x100000);
        a.ld(7, 5, 0);
        a.ld(7, 6, 64); // same page, different line
        a.halt(7);
    });
    EXPECT_GT(rp.cycles, rs.cycles)
        << "the second page walk must be visible";
}

TEST(CoreO3, PredictorLearnsLoopBranches)
{
    // A long-running loop: after warmup, the back edge predicts
    // correctly and CPI approaches 1/width, far better than if every
    // taken branch flushed.
    auto m = Machine::gem5x86();
    RunResult r = runX86(*m, [](x86::X86Asm &a) {
        using namespace x86;
        a.movImm(RBP, 3000);
        auto loop = a.newLabel();
        a.bind(loop);
        for (int i = 0; i < 7; ++i)
            a.addi(unsigned(R8 + i), 1);
        a.addi(RBP, -1);
        a.jnz(loop);
        a.halt(RAX);
    });
    double cpi = double(r.cycles) / double(r.instructions);
    EXPECT_LT(cpi, 1.0) << "trained loop must run superscalar";
}

TEST(CoreO3, AlternatingBranchMispredicts)
{
    // A branch that alternates taken/not-taken defeats the 2-bit
    // counters and costs redirects.
    auto alt = Machine::gem5x86();
    RunResult ra = runX86(*alt, [](x86::X86Asm &a) {
        using namespace x86;
        a.movImm(RBP, 2000);
        a.movImm(R8, 0);
        auto loop = a.newLabel();
        auto skip = a.newLabel();
        a.bind(loop);
        a.movImm(R9, 1);
        a.and_(R9, R8); // R9 = parity tracker & 1... keep flags use:
        a.addi(R8, 1);
        a.movImm(R10, 1);
        a.and_(R10, R8);   // ZF = !(R8 & 1): alternates each iteration
        a.jz8(skip);
        a.addi(R11, 1);
        a.bind(skip);
        a.addi(RBP, -1);
        a.jnz(loop);
        a.halt(RAX);
    });
    auto steady = Machine::gem5x86();
    RunResult rs = runX86(*steady, [](x86::X86Asm &a) {
        using namespace x86;
        a.movImm(RBP, 2000);
        auto loop = a.newLabel();
        auto skip = a.newLabel();
        a.bind(loop);
        a.movImm(R9, 0);
        a.addi(R8, 1);
        a.movImm(R10, 0);
        a.or_(R10, R10);   // ZF always set: never-taken... jz taken!
        a.jnz8(skip);      // never taken: perfectly predictable
        a.addi(R11, 1);
        a.bind(skip);
        a.addi(RBP, -1);
        a.jnz(loop);
        a.halt(RAX);
    });
    EXPECT_GT(double(ra.cycles) / double(ra.instructions),
              double(rs.cycles) / double(rs.instructions));
}
