/**
 * @file
 * Disassembler tests: rendering of every instruction class on both
 * ISAs, used by the execution tracer.
 */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/riscv/assembler.hh"
#include "isa/riscv/riscv_isa.hh"
#include "isa/x86/assembler.hh"
#include "isa/x86/x86_isa.hh"
#include "mem/phys_mem.hh"

using namespace isagrid;

namespace {

std::string
disRiscv(const std::function<void(riscv::RiscvAsm &)> &emit)
{
    static riscv::RiscvIsa isa;
    riscv::RiscvAsm a(0x1000);
    emit(a);
    auto bytes = a.finalize();
    return disassemble(isa.decode(bytes.data(), bytes.size(), 0x1000));
}

std::string
disX86(const std::function<void(x86::X86Asm &)> &emit)
{
    static x86::X86Isa isa;
    x86::X86Asm a(0x1000);
    emit(a);
    auto bytes = a.finalize();
    return disassemble(isa.decode(bytes.data(), bytes.size(), 0x1000));
}

} // namespace

TEST(Disasm, AluOperands)
{
    EXPECT_EQ(disRiscv([](auto &a) { a.add(1, 2, 3); }), "add r1, r2, r3");
    EXPECT_EQ(disRiscv([](auto &a) { a.addi(5, 6, -4); }),
              "addi r5, r6, -4");
    EXPECT_EQ(disX86([](auto &a) { a.add(x86::RAX, x86::RBX); }),
              "add r0, r0, r3");
}

TEST(Disasm, MemoryOperands)
{
    EXPECT_EQ(disRiscv([](auto &a) { a.ld(7, 8, 16); }),
              "ld r7, 16(r8)");
    EXPECT_EQ(disRiscv([](auto &a) { a.sd(7, 8, -8); }),
              "sd r7, -8(r8)");
    EXPECT_EQ(disX86([](auto &a) { a.load64(x86::RDX, x86::RSI, 4); }),
              "load64 r2, 4(r6)");
}

TEST(Disasm, BranchesShowRelativeTargets)
{
    std::string s = disRiscv([](auto &a) {
        auto l = a.newLabel();
        a.beq(1, 2, l);
        a.nop();
        a.bind(l);
    });
    EXPECT_EQ(s, "beq r1, r2, pc+8");
}

TEST(Disasm, CsrAccessesShowAddress)
{
    EXPECT_EQ(disRiscv([](auto &a) { a.csrw(riscv::CSR_SATP, 3); }),
              "csrrw csr:0x180, r3");
    EXPECT_EQ(disRiscv([](auto &a) { a.csrr(4, riscv::CSR_SEPC); }),
              "csrrs r4, csr:0x141");
    EXPECT_EQ(disX86([](auto &a) { a.movToCr(3, x86::RAX); }),
              "movcrr csr:0x1003, r0");
}

TEST(Disasm, DynamicMsrShowsIndexRegister)
{
    EXPECT_EQ(disX86([](auto &a) { a.wrmsr(); }), "wrmsr csr:[r1]");
    EXPECT_EQ(disX86([](auto &a) { a.rdmsr(); }), "rdmsr csr:[r1]");
}

TEST(Disasm, GatesShowIdRegister)
{
    EXPECT_EQ(disRiscv([](auto &a) { a.hccall(30); }), "hccall r30");
    EXPECT_EQ(disRiscv([](auto &a) { a.hcrets(); }), "hcrets");
    EXPECT_EQ(disX86([](auto &a) { a.hccalls(x86::RCX); }),
              "hccalls r1");
}

TEST(Disasm, InvalidRenders)
{
    DecodedInst bad;
    EXPECT_EQ(disassemble(bad), "<invalid>");
}

namespace {

/** Assembled bytes of one instruction per ISA, for truncation tests. */
std::vector<std::uint8_t>
sampleBytes(bool is_x86)
{
    if (is_x86) {
        x86::X86Asm a(0x1000);
        a.movImm(0, 0x123456789abcdef0ull); // movabs: a long encoding
        return a.finalize();
    }
    riscv::RiscvAsm a(0x1000);
    a.add(1, 2, 3);
    return a.finalize();
}

} // namespace

TEST(Disasm, TruncatedBytesDecodeInvalidNotPastEnd)
{
    riscv::RiscvIsa riscv_isa;
    x86::X86Isa x86_isa;
    for (bool is_x86 : {false, true}) {
        const IsaModel &isa =
            is_x86 ? static_cast<const IsaModel &>(x86_isa)
                   : static_cast<const IsaModel &>(riscv_isa);
        auto bytes = sampleBytes(is_x86);
        DecodedInst full = isa.decode(bytes.data(), bytes.size(), 0x1000);
        ASSERT_TRUE(full.valid);
        ASSERT_EQ(full.length, bytes.size());
        // Every strict prefix must decode cleanly to invalid — never
        // read past the supplied byte count, never claim validity.
        for (std::size_t avail = 0; avail < bytes.size(); ++avail) {
            DecodedInst cut = isa.decode(bytes.data(), avail, 0x1000);
            EXPECT_FALSE(cut.valid)
                << (is_x86 ? "x86" : "riscv") << " avail=" << avail;
        }
    }
}

TEST(Disasm, DecodeAtClampsToMemoryEnd)
{
    riscv::RiscvIsa riscv_isa;
    x86::X86Isa x86_isa;
    for (bool is_x86 : {false, true}) {
        const IsaModel &isa =
            is_x86 ? static_cast<const IsaModel &>(x86_isa)
                   : static_cast<const IsaModel &>(riscv_isa);
        auto bytes = sampleBytes(is_x86);
        PhysMem mem(0x2000);

        // Flush against the end of memory: decodes exactly.
        Addr snug = mem.size() - bytes.size();
        mem.writeBlock(snug, bytes.data(), bytes.size());
        DecodedInst at_end = decodeAt(isa, mem, snug);
        EXPECT_TRUE(at_end.valid) << (is_x86 ? "x86" : "riscv");
        EXPECT_EQ(at_end.length, bytes.size());

        // One byte hangs past the end: invalid, not an OOB read.
        Addr cut = mem.size() - bytes.size() + 1;
        mem.writeBlock(cut, bytes.data(), mem.size() - cut);
        EXPECT_FALSE(decodeAt(isa, mem, cut).valid);

        // Entirely outside memory: invalid.
        EXPECT_FALSE(decodeAt(isa, mem, mem.size()).valid);
        EXPECT_FALSE(decodeAt(isa, mem, mem.size() + 64).valid);
    }
}

TEST(Disasm, DecodeAtHonorsExplicitLimit)
{
    riscv::RiscvIsa isa;
    auto bytes = sampleBytes(false);
    PhysMem mem(0x2000);
    Addr base = 0x1000;
    mem.writeBlock(base, bytes.data(), bytes.size());

    // A limit at the region end admits the instruction; a limit that
    // truncates it yields invalid (the superset scan's region edge).
    EXPECT_TRUE(decodeAt(isa, mem, base, base + bytes.size()).valid);
    EXPECT_FALSE(decodeAt(isa, mem, base, base + bytes.size() - 1).valid);
}
