/**
 * @file
 * Disassembler tests: rendering of every instruction class on both
 * ISAs, used by the execution tracer.
 */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/riscv/assembler.hh"
#include "isa/riscv/riscv_isa.hh"
#include "isa/x86/assembler.hh"
#include "isa/x86/x86_isa.hh"

using namespace isagrid;

namespace {

std::string
disRiscv(const std::function<void(riscv::RiscvAsm &)> &emit)
{
    static riscv::RiscvIsa isa;
    riscv::RiscvAsm a(0x1000);
    emit(a);
    auto bytes = a.finalize();
    return disassemble(isa.decode(bytes.data(), bytes.size(), 0x1000));
}

std::string
disX86(const std::function<void(x86::X86Asm &)> &emit)
{
    static x86::X86Isa isa;
    x86::X86Asm a(0x1000);
    emit(a);
    auto bytes = a.finalize();
    return disassemble(isa.decode(bytes.data(), bytes.size(), 0x1000));
}

} // namespace

TEST(Disasm, AluOperands)
{
    EXPECT_EQ(disRiscv([](auto &a) { a.add(1, 2, 3); }), "add r1, r2, r3");
    EXPECT_EQ(disRiscv([](auto &a) { a.addi(5, 6, -4); }),
              "addi r5, r6, -4");
    EXPECT_EQ(disX86([](auto &a) { a.add(x86::RAX, x86::RBX); }),
              "add r0, r0, r3");
}

TEST(Disasm, MemoryOperands)
{
    EXPECT_EQ(disRiscv([](auto &a) { a.ld(7, 8, 16); }),
              "ld r7, 16(r8)");
    EXPECT_EQ(disRiscv([](auto &a) { a.sd(7, 8, -8); }),
              "sd r7, -8(r8)");
    EXPECT_EQ(disX86([](auto &a) { a.load64(x86::RDX, x86::RSI, 4); }),
              "load64 r2, 4(r6)");
}

TEST(Disasm, BranchesShowRelativeTargets)
{
    std::string s = disRiscv([](auto &a) {
        auto l = a.newLabel();
        a.beq(1, 2, l);
        a.nop();
        a.bind(l);
    });
    EXPECT_EQ(s, "beq r1, r2, pc+8");
}

TEST(Disasm, CsrAccessesShowAddress)
{
    EXPECT_EQ(disRiscv([](auto &a) { a.csrw(riscv::CSR_SATP, 3); }),
              "csrrw csr:0x180, r3");
    EXPECT_EQ(disRiscv([](auto &a) { a.csrr(4, riscv::CSR_SEPC); }),
              "csrrs r4, csr:0x141");
    EXPECT_EQ(disX86([](auto &a) { a.movToCr(3, x86::RAX); }),
              "movcrr csr:0x1003, r0");
}

TEST(Disasm, DynamicMsrShowsIndexRegister)
{
    EXPECT_EQ(disX86([](auto &a) { a.wrmsr(); }), "wrmsr csr:[r1]");
    EXPECT_EQ(disX86([](auto &a) { a.rdmsr(); }), "rdmsr csr:[r1]");
}

TEST(Disasm, GatesShowIdRegister)
{
    EXPECT_EQ(disRiscv([](auto &a) { a.hccall(30); }), "hccall r30");
    EXPECT_EQ(disRiscv([](auto &a) { a.hcrets(); }), "hcrets");
    EXPECT_EQ(disX86([](auto &a) { a.hccalls(x86::RCX); }),
              "hccalls r1");
}

TEST(Disasm, InvalidRenders)
{
    DecodedInst bad;
    EXPECT_EQ(disassemble(bad), "<invalid>");
}
