/**
 * @file
 * Randomized property tests.
 *
 * 1. PCU-vs-reference: a random privilege matrix is installed through
 *    the DomainManager and then probed with thousands of random
 *    checks; the PCU (with its caches, bypass register and random
 *    interleavings of flushes and domain switches) must agree with a
 *    trivial host-side reference model on every single outcome.
 * 2. Cross-ISA differential execution: random straight-line programs
 *    written against the AsmIface facade must produce identical halt
 *    codes on the RV64 and x86 machines.
 * 3. Dynamic/static agreement: every attack scenario must be rejected
 *    by the PCU at runtime AND flagged by the static verifier without
 *    executing a single payload instruction.
 */

#include <gtest/gtest.h>

#include "attacks/attacks.hh"
#include "cpu/machine.hh"
#include "isa/riscv/riscv_isa.hh"
#include "isagrid/domain_manager.hh"
#include "kernel/asm_iface.hh"
#include "kernel/layout.hh"
#include "sim/random.hh"
#include "verify/verify.hh"

using namespace isagrid;
using namespace isagrid::riscv;

namespace {

/** Trivial reference model of the Section 4.1 semantics. */
struct Reference
{
    static constexpr unsigned numDomains = 6;

    bool inst[numDomains][64] = {};
    bool read[numDomains][16] = {};
    bool write[numDomains][16] = {};
    RegVal mask[numDomains] = {}; // sstatus only

    bool
    checkInst(DomainId d, InstTypeId t) const
    {
        return d == 0 || inst[d][t];
    }

    bool
    checkRead(DomainId d, CsrIndex i) const
    {
        return d == 0 || read[d][i];
    }

    bool
    checkWrite(DomainId d, std::uint32_t csr, CsrIndex i, RegVal old,
               RegVal neu) const
    {
        if (d == 0 || write[d][i])
            return true;
        if (csr != CSR_SSTATUS)
            return false;
        return ((old ^ neu) & ~mask[d]) == 0;
    }
};

} // namespace

class PcuReference : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PcuReference, RandomMatrixAgreesUnderRandomProbing)
{
    SplitMix64 rng(GetParam());
    RiscvIsa isa;
    PhysMem mem(16 * 1024 * 1024);
    PcuConfig config;
    config.hpt_cache_entries = 1 + unsigned(rng.below(4));
    config.sgt_cache_entries = unsigned(rng.below(3));
    config.bypass_enabled = rng.chance(1, 2);
    config.legal_cache_entries =
        rng.chance(1, 2) ? unsigned(rng.below(16)) : 0;
    PrivilegeCheckUnit pcu(isa, mem, config);
    DomainManagerConfig dmc;
    dmc.tmem_base = 8 * 1024 * 1024;
    dmc.tmem_size = 1024 * 1024;
    DomainManager dm(pcu, mem, dmc);

    Reference ref;
    const auto &csrs = RiscvIsa::controlledCsrs();
    for (DomainId d = 1; d < Reference::numDomains; ++d) {
        dm.createDomain();
        for (InstTypeId t = 0; t < isa.numInstTypes(); ++t) {
            if (rng.chance(1, 2)) {
                dm.allowInstruction(d, t);
                ref.inst[d][t] = true;
            }
        }
        for (CsrIndex i = 0; i < csrs.size(); ++i) {
            if (rng.chance(1, 3)) {
                dm.allowCsrRead(d, csrs[i]);
                ref.read[d][i] = true;
            }
            if (rng.chance(1, 4)) {
                dm.allowCsrWrite(d, csrs[i]);
                ref.write[d][i] = true;
            }
        }
        ref.mask[d] = rng.next();
        dm.setCsrMask(d, CSR_SSTATUS, ref.mask[d]);
    }
    dm.publish();

    DomainId current = 0;
    for (int probe = 0; probe < 4000; ++probe) {
        switch (rng.below(6)) {
          case 0: { // domain switch (host-side, like a gate would)
            current = rng.below(Reference::numDomains);
            pcu.setGridReg(GridReg::Domain, current);
            pcu.flushBuffers(PcuBuffer::InstCache); // reset bypass
            break;
          }
          case 1: { // random cache flush
            pcu.flushBuffers(
                static_cast<PcuBuffer>(rng.below(5)));
            break;
          }
          case 2: { // instruction check (sometimes via legal cache)
            InstTypeId t = InstTypeId(rng.below(isa.numInstTypes()));
            // The legal cache caches by (domain, pc): the instruction
            // at a pc never changes in real code, so the probe keys
            // the pc off the type.
            bool got = rng.chance(1, 2)
                           ? pcu.checkInstruction(t).allowed
                           : pcu.checkInstructionAt(t, 0x1000 + t * 4,
                                                    true)
                                 .allowed;
            ASSERT_EQ(got, ref.checkInst(current, t))
                << "domain " << current << " type " << t;
            break;
          }
          case 3: { // CSR read check
            CsrIndex i = CsrIndex(rng.below(csrs.size()));
            bool got = pcu.checkCsrRead(csrs[i]).allowed;
            ASSERT_EQ(got, ref.checkRead(current, i));
            break;
          }
          case 4: { // CSR write check with random values
            CsrIndex i = CsrIndex(rng.below(csrs.size()));
            RegVal old = rng.next(), neu = rng.next();
            if (rng.chance(1, 3))
                neu = old; // exercise the no-change case
            bool got = pcu.checkCsrWrite(csrs[i], old, neu).allowed;
            ASSERT_EQ(got,
                      ref.checkWrite(current, csrs[i], i, old, neu))
                << "domain " << current << " csr " << std::hex
                << csrs[i];
            break;
          }
          case 5: { // prefetch must never change outcomes
            pcu.prefetch(rng.chance(1, 2) ? 0
                                          : csrs[rng.below(
                                                csrs.size())]);
            break;
          }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcuReference,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

// ---------------------------------------------------------------------
// Cross-ISA differential execution
// ---------------------------------------------------------------------

namespace {

/** Emit a random straight-line facade program; returns nothing —
 *  the halt code is whatever accumulates in regUser(0). */
void
emitRandomProgram(AsmIface &a, std::uint64_t seed)
{
    SplitMix64 rng(seed);
    unsigned acc = a.regUser(0), aux = a.regUser(1),
             ptr = a.regUser(2);
    a.li(a.regSp(), layout::userStackTop);
    a.li(acc, rng.next());
    a.li(aux, rng.next() | 1);
    a.li(ptr, layout::userDataBase);

    for (int i = 0; i < 120; ++i) {
        switch (rng.below(10)) {
          case 0: a.add(acc, aux); break;
          case 1: a.sub(acc, aux); break;
          case 2: a.xor_(acc, aux); break;
          case 3: a.or_(aux, acc); break;
          case 4: a.and_(acc, aux); break;
          case 5: a.mul(acc, aux); break;
          case 6: a.addi(acc, int(rng.below(200)) - 100); break;
          case 7: a.shli(acc, 1 + unsigned(rng.below(8))); break;
          case 8:
            a.store64(acc, ptr, std::int32_t(rng.below(64)) * 8);
            break;
          case 9:
            a.load64(aux, ptr, std::int32_t(rng.below(64)) * 8);
            a.or_(aux, acc); // keep aux nonzero-ish
            break;
        }
    }
    a.halt(acc);
}

} // namespace

class CrossIsaDifferential
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CrossIsaDifferential, SameProgramSameResult)
{
    std::uint64_t seed = GetParam();

    auto rv = Machine::rocket();
    {
        auto a = makeRiscvAsm(0x1000);
        emitRandomProgram(*a, seed);
        a->loadInto(rv->mem());
    }
    RunResult r1 = rv->run(0x1000, 1'000'000);
    ASSERT_EQ(r1.reason, StopReason::Halted);

    auto ix = Machine::gem5x86();
    {
        auto a = makeX86Asm(0x1000);
        emitRandomProgram(*a, seed);
        a->loadInto(ix->mem());
    }
    RunResult r2 = ix->run(0x1000, 1'000'000);
    ASSERT_EQ(r2.reason, StopReason::Halted);

    EXPECT_EQ(r1.halt_code, r2.halt_code) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossIsaDifferential,
                         ::testing::Range<std::uint64_t>(100, 130));

// ---------------------------------------------------------------------
// Dynamic/static agreement over the attack corpus
// ---------------------------------------------------------------------

class AttackAgreement : public ::testing::TestWithParam<bool>
{
};

TEST_P(AttackAgreement, RejectedDynamicallyAndFlaggedStatically)
{
    bool x86 = GetParam();
    for (const AttackScenario &s : attackScenarios(x86)) {
        // Dynamic: the PCU blocks the payload with a hardware fault.
        AttackOutcome outcome = runAttack(s, x86, true);
        EXPECT_TRUE(outcome.blocked)
            << s.name << ": not blocked at runtime";
        EXPECT_FALSE(outcome.reached_halt) << s.name;

        // Static: the verifier flags the same prepared image without
        // running it.
        PreparedAttack prepared = prepareAttack(s, x86, true);
        PolicySnapshot snap =
            PolicySnapshot::fromPcu(prepared.machine->pcu());
        Verifier verifier(prepared.machine->isa(),
                          prepared.machine->mem(), snap,
                          prepared.image.code_regions);
        VerifyReport report = verifier.run();
        EXPECT_GE(report.violations(), 1u)
            << s.name << ": not flagged statically:\n"
            << report.text();
    }
}

INSTANTIATE_TEST_SUITE_P(Isas, AttackAgreement, ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? "x86" : "riscv";
                         });
