/**
 * @file
 * RISC-V ISA model tests: assembler/decoder round trips for every
 * supported instruction, immediate encodings, executor semantics
 * checked property-style against host arithmetic, and trap mechanics.
 */

#include <gtest/gtest.h>

#include "isa/riscv/assembler.hh"
#include "isa/riscv/riscv_isa.hh"
#include "mem/phys_mem.hh"
#include "sim/random.hh"

using namespace isagrid;
using namespace isagrid::riscv;

namespace {

RiscvIsa isa;

DecodedInst
decodeOne(const std::vector<std::uint8_t> &bytes, Addr pc = 0x1000)
{
    return isa.decode(bytes.data(), bytes.size(), pc);
}

/** Assemble a single instruction and decode it back. */
DecodedInst
roundTrip(const std::function<void(RiscvAsm &)> &emit)
{
    RiscvAsm a(0x1000);
    emit(a);
    std::vector<std::uint8_t> bytes = a.finalize();
    return decodeOne(bytes);
}

/** Fresh architectural state with a given PC. */
ArchState
freshState(Addr pc = 0x1000)
{
    ArchState s;
    isa.initState(s);
    s.pc = pc;
    return s;
}

} // namespace

// ---------------------------------------------------------------------
// Decoder round trips
// ---------------------------------------------------------------------

struct RtCase
{
    const char *mnemonic;
    InstClass cls;
    std::function<void(RiscvAsm &)> emit;
};

class RiscvRoundTrip : public ::testing::TestWithParam<RtCase>
{
};

TEST_P(RiscvRoundTrip, DecodesToEmittedMnemonic)
{
    const RtCase &c = GetParam();
    DecodedInst inst = roundTrip(c.emit);
    ASSERT_TRUE(inst.valid) << c.mnemonic;
    EXPECT_STREQ(inst.mnemonic, c.mnemonic);
    EXPECT_EQ(inst.cls, c.cls) << c.mnemonic;
    EXPECT_EQ(inst.length, 4u);
}

static const RtCase rtCases[] = {
    {"lui", InstClass::IntAlu, [](RiscvAsm &a) { a.lui(3, 0x12345); }},
    {"auipc", InstClass::IntAlu, [](RiscvAsm &a) { a.auipc(4, 1); }},
    {"jalr", InstClass::Jump, [](RiscvAsm &a) { a.jalr(1, 2, 16); }},
    {"lb", InstClass::Load, [](RiscvAsm &a) { a.lb(5, 6, -4); }},
    {"lh", InstClass::Load, [](RiscvAsm &a) { a.lh(5, 6, 2); }},
    {"lw", InstClass::Load, [](RiscvAsm &a) { a.lw(5, 6, 8); }},
    {"ld", InstClass::Load, [](RiscvAsm &a) { a.ld(5, 6, 8); }},
    {"lbu", InstClass::Load, [](RiscvAsm &a) { a.lbu(5, 6, 1); }},
    {"lhu", InstClass::Load, [](RiscvAsm &a) { a.lhu(5, 6, 2); }},
    {"lwu", InstClass::Load, [](RiscvAsm &a) { a.lwu(5, 6, 4); }},
    {"sb", InstClass::Store, [](RiscvAsm &a) { a.sb(7, 8, 3); }},
    {"sh", InstClass::Store, [](RiscvAsm &a) { a.sh(7, 8, -2); }},
    {"sw", InstClass::Store, [](RiscvAsm &a) { a.sw(7, 8, 4); }},
    {"sd", InstClass::Store, [](RiscvAsm &a) { a.sd(7, 8, 8); }},
    {"addi", InstClass::IntAlu, [](RiscvAsm &a) { a.addi(1, 2, -3); }},
    {"slti", InstClass::IntAlu, [](RiscvAsm &a) { a.slti(1, 2, 9); }},
    {"sltiu", InstClass::IntAlu, [](RiscvAsm &a) { a.sltiu(1, 2, 9); }},
    {"xori", InstClass::IntAlu, [](RiscvAsm &a) { a.xori(1, 2, 5); }},
    {"ori", InstClass::IntAlu, [](RiscvAsm &a) { a.ori(1, 2, 5); }},
    {"andi", InstClass::IntAlu, [](RiscvAsm &a) { a.andi(1, 2, 5); }},
    {"slli", InstClass::IntAlu, [](RiscvAsm &a) { a.slli(1, 2, 33); }},
    {"srli", InstClass::IntAlu, [](RiscvAsm &a) { a.srli(1, 2, 33); }},
    {"srai", InstClass::IntAlu, [](RiscvAsm &a) { a.srai(1, 2, 33); }},
    {"add", InstClass::IntAlu, [](RiscvAsm &a) { a.add(1, 2, 3); }},
    {"sub", InstClass::IntAlu, [](RiscvAsm &a) { a.sub(1, 2, 3); }},
    {"sll", InstClass::IntAlu, [](RiscvAsm &a) { a.sll(1, 2, 3); }},
    {"slt", InstClass::IntAlu, [](RiscvAsm &a) { a.slt(1, 2, 3); }},
    {"sltu", InstClass::IntAlu, [](RiscvAsm &a) { a.sltu(1, 2, 3); }},
    {"xor", InstClass::IntAlu, [](RiscvAsm &a) { a.xor_(1, 2, 3); }},
    {"srl", InstClass::IntAlu, [](RiscvAsm &a) { a.srl(1, 2, 3); }},
    {"sra", InstClass::IntAlu, [](RiscvAsm &a) { a.sra(1, 2, 3); }},
    {"or", InstClass::IntAlu, [](RiscvAsm &a) { a.or_(1, 2, 3); }},
    {"and", InstClass::IntAlu, [](RiscvAsm &a) { a.and_(1, 2, 3); }},
    {"mul", InstClass::IntAlu, [](RiscvAsm &a) { a.mul(1, 2, 3); }},
    {"div", InstClass::IntAlu, [](RiscvAsm &a) { a.div(1, 2, 3); }},
    {"rem", InstClass::IntAlu, [](RiscvAsm &a) { a.rem(1, 2, 3); }},
    {"fence", InstClass::Nop, [](RiscvAsm &a) { a.fence(); }},
    {"ecall", InstClass::Syscall, [](RiscvAsm &a) { a.ecall(); }},
    {"ebreak", InstClass::Syscall, [](RiscvAsm &a) { a.ebreak(); }},
    {"sret", InstClass::TrapRet, [](RiscvAsm &a) { a.sret(); }},
    {"wfi", InstClass::SysOther, [](RiscvAsm &a) { a.wfi(); }},
    {"sfence.vma", InstClass::SysOther,
     [](RiscvAsm &a) { a.sfenceVma(); }},
    {"csrrw", InstClass::CsrWrite,
     [](RiscvAsm &a) { a.csrrw(1, CSR_SEPC, 2); }},
    {"csrrs", InstClass::CsrWrite,
     [](RiscvAsm &a) { a.csrrs(1, CSR_SEPC, 2); }},
    {"csrrc", InstClass::CsrWrite,
     [](RiscvAsm &a) { a.csrrc(1, CSR_SEPC, 2); }},
    {"csrrwi", InstClass::CsrWrite,
     [](RiscvAsm &a) { a.csrrwi(1, CSR_SEPC, 5); }},
    {"hccall", InstClass::GateCall, [](RiscvAsm &a) { a.hccall(30); }},
    {"hccalls", InstClass::GateCallS,
     [](RiscvAsm &a) { a.hccalls(30); }},
    {"hcrets", InstClass::GateRet, [](RiscvAsm &a) { a.hcrets(); }},
    {"pfch", InstClass::Prefetch, [](RiscvAsm &a) { a.pfch(4); }},
    {"pflh", InstClass::CacheFlush, [](RiscvAsm &a) { a.pflh(4); }},
    {"halt", InstClass::Halt, [](RiscvAsm &a) { a.halt(10); }},
    {"simmark", InstClass::SimMark, [](RiscvAsm &a) { a.simmark(10); }},
};

INSTANTIATE_TEST_SUITE_P(AllInstructions, RiscvRoundTrip,
                         ::testing::ValuesIn(rtCases),
                         [](const auto &info) {
                             std::string n = info.param.mnemonic;
                             for (auto &c : n)
                                 if (!std::isalnum((unsigned char)c))
                                     c = '_';
                             return n;
                         });

TEST(RiscvDecode, BranchesRoundTripWithTargets)
{
    RiscvAsm a(0x1000);
    auto target = a.newLabel();
    a.beq(1, 2, target);
    a.bne(3, 4, target);
    a.blt(5, 6, target);
    a.bge(7, 8, target);
    a.bltu(9, 10, target);
    a.bgeu(11, 12, target);
    a.bind(target);
    a.nop();
    auto bytes = a.finalize();

    const char *names[] = {"beq", "bne", "blt", "bge", "bltu", "bgeu"};
    for (int i = 0; i < 6; ++i) {
        DecodedInst inst = isa.decode(bytes.data() + 4 * i, 4,
                                      0x1000 + 4 * i);
        ASSERT_TRUE(inst.valid);
        EXPECT_STREQ(inst.mnemonic, names[i]);
        // Offset reaches the bound label.
        EXPECT_EQ(0x1000 + 4 * i + inst.imm, 0x1018);
    }
}

TEST(RiscvDecode, JalRoundTripsNegativeOffset)
{
    RiscvAsm a(0x2000);
    auto loop = a.newLabel();
    a.bind(loop);
    a.nop();
    a.jal(0, loop);
    auto bytes = a.finalize();
    DecodedInst inst = isa.decode(bytes.data() + 4, 4, 0x2004);
    ASSERT_TRUE(inst.valid);
    EXPECT_STREQ(inst.mnemonic, "jal");
    EXPECT_EQ(inst.imm, -4);
}

TEST(RiscvDecode, ImmediateSignExtension)
{
    auto inst = roundTrip([](RiscvAsm &a) { a.addi(1, 0, -2048); });
    EXPECT_EQ(inst.imm, -2048);
    inst = roundTrip([](RiscvAsm &a) { a.addi(1, 0, 2047); });
    EXPECT_EQ(inst.imm, 2047);
    inst = roundTrip([](RiscvAsm &a) { a.sd(1, 2, -8); });
    EXPECT_EQ(inst.imm, -8);
}

TEST(RiscvDecode, CsrAddressCarried)
{
    auto inst =
        roundTrip([](RiscvAsm &a) { a.csrrw(1, CSR_SATP, 2); });
    EXPECT_EQ(inst.csr_addr, std::uint32_t(CSR_SATP));
    EXPECT_FALSE(inst.csr_dynamic);
}

TEST(RiscvDecode, CsrrsWithX0IsPureRead)
{
    auto inst = roundTrip([](RiscvAsm &a) { a.csrr(3, CSR_SEPC); });
    EXPECT_EQ(inst.cls, InstClass::CsrRead);
    auto write = roundTrip([](RiscvAsm &a) { a.csrrs(3, CSR_SEPC, 4); });
    EXPECT_EQ(write.cls, InstClass::CsrWrite);
}

TEST(RiscvDecode, GarbageIsInvalid)
{
    std::vector<std::uint8_t> junk = {0xff, 0xff, 0xff, 0xff};
    EXPECT_FALSE(decodeOne(junk).valid);
    std::vector<std::uint8_t> zero = {0x00, 0x00, 0x00, 0x00};
    EXPECT_FALSE(decodeOne(zero).valid);
}

TEST(RiscvDecode, TruncatedFetchIsInvalid)
{
    std::vector<std::uint8_t> bytes = {0x13, 0x00};
    EXPECT_FALSE(isa.decode(bytes.data(), 2, 0).valid);
}

// ---------------------------------------------------------------------
// Executor semantics (property style against host arithmetic)
// ---------------------------------------------------------------------

TEST(RiscvExec, AluOpsMatchHostArithmetic)
{
    SplitMix64 rng(1234);
    for (int trial = 0; trial < 200; ++trial) {
        std::uint64_t x = rng.next(), y = rng.next();
        ArchState s = freshState();
        s.setReg(2, x);
        s.setReg(3, y);

        struct Op
        {
            std::function<void(RiscvAsm &)> emit;
            std::uint64_t expect;
        };
        std::int64_t sx = std::int64_t(x), sy = std::int64_t(y);
        Op ops[] = {
            {[](RiscvAsm &a) { a.add(1, 2, 3); }, x + y},
            {[](RiscvAsm &a) { a.sub(1, 2, 3); }, x - y},
            {[](RiscvAsm &a) { a.xor_(1, 2, 3); }, x ^ y},
            {[](RiscvAsm &a) { a.or_(1, 2, 3); }, x | y},
            {[](RiscvAsm &a) { a.and_(1, 2, 3); }, x & y},
            {[](RiscvAsm &a) { a.sll(1, 2, 3); }, x << (y & 63)},
            {[](RiscvAsm &a) { a.srl(1, 2, 3); }, x >> (y & 63)},
            {[](RiscvAsm &a) { a.sra(1, 2, 3); },
             std::uint64_t(sx >> (y & 63))},
            {[](RiscvAsm &a) { a.slt(1, 2, 3); },
             std::uint64_t(sx < sy)},
            {[](RiscvAsm &a) { a.sltu(1, 2, 3); },
             std::uint64_t(x < y)},
            {[](RiscvAsm &a) { a.mul(1, 2, 3); }, x * y},
        };
        for (auto &op : ops) {
            ArchState state = s;
            DecodedInst inst = roundTrip(op.emit);
            isa.execute(inst, state);
            EXPECT_EQ(state.reg(1), op.expect);
        }
    }
}

TEST(RiscvExec, DivisionEdgeCases)
{
    ArchState s = freshState();
    s.setReg(2, 100);
    s.setReg(3, 0);
    DecodedInst div = roundTrip([](RiscvAsm &a) { a.div(1, 2, 3); });
    isa.execute(div, s);
    EXPECT_EQ(s.reg(1), ~std::uint64_t{0}); // div by zero -> all ones
    DecodedInst rem = roundTrip([](RiscvAsm &a) { a.rem(1, 2, 3); });
    isa.execute(rem, s);
    EXPECT_EQ(s.reg(1), 100u); // rem by zero -> dividend
}

TEST(RiscvExec, X0IsHardwiredToZero)
{
    ArchState s = freshState();
    s.setReg(2, 55);
    DecodedInst inst = roundTrip([](RiscvAsm &a) { a.addi(0, 2, 1); });
    isa.execute(inst, s);
    EXPECT_EQ(s.reg(0), 0u);
}

TEST(RiscvExec, LoadProducesMemRequest)
{
    ArchState s = freshState();
    s.setReg(6, 0x8000);
    DecodedInst inst = roundTrip([](RiscvAsm &a) { a.lw(5, 6, -4); });
    ExecResult res = isa.execute(inst, s);
    EXPECT_TRUE(res.mem_valid);
    EXPECT_FALSE(res.mem_write);
    EXPECT_EQ(res.mem_addr, 0x7ffcu);
    EXPECT_EQ(res.mem_size, 4u);
    EXPECT_TRUE(res.mem_sign_extend);
    EXPECT_EQ(res.mem_reg, 5u);
}

TEST(RiscvExec, StoreCarriesValue)
{
    ArchState s = freshState();
    s.setReg(8, 0x9000);
    s.setReg(7, 0xabcd);
    DecodedInst inst = roundTrip([](RiscvAsm &a) { a.sh(7, 8, 6); });
    ExecResult res = isa.execute(inst, s);
    EXPECT_TRUE(res.mem_write);
    EXPECT_EQ(res.mem_addr, 0x9006u);
    EXPECT_EQ(res.mem_size, 2u);
    EXPECT_EQ(res.store_value, 0xabcdu);
}

TEST(RiscvExec, BranchTakenAndNotTaken)
{
    ArchState s = freshState(0x1000);
    s.setReg(1, 5);
    s.setReg(2, 5);
    RiscvAsm a(0x1000);
    auto t = a.newLabel();
    a.beq(1, 2, t);
    a.nop();
    a.bind(t);
    auto bytes = a.finalize();
    DecodedInst inst = isa.decode(bytes.data(), 4, 0x1000);
    ExecResult res = isa.execute(inst, s);
    EXPECT_TRUE(res.taken_branch);
    EXPECT_EQ(res.next_pc, 0x1008u);

    s.setReg(2, 6);
    res = isa.execute(inst, s);
    EXPECT_FALSE(res.taken_branch);
    EXPECT_EQ(res.next_pc, 0x1004u);
}

TEST(RiscvExec, JalLinksReturnAddress)
{
    ArchState s = freshState(0x1000);
    RiscvAsm a(0x1000);
    auto t = a.newLabel();
    a.jal(1, t);
    a.nop();
    a.bind(t);
    auto bytes = a.finalize();
    DecodedInst inst = isa.decode(bytes.data(), 4, 0x1000);
    ExecResult res = isa.execute(inst, s);
    EXPECT_EQ(s.reg(1), 0x1004u);
    EXPECT_EQ(res.next_pc, 0x1008u);
}

TEST(RiscvExec, CsrNewValueImplementsSetAndClear)
{
    DecodedInst rw = roundTrip([](RiscvAsm &a) { a.csrrw(1, 0x100, 2); });
    DecodedInst rs = roundTrip([](RiscvAsm &a) { a.csrrs(1, 0x100, 2); });
    DecodedInst rc = roundTrip([](RiscvAsm &a) { a.csrrc(1, 0x100, 2); });
    EXPECT_EQ(isa.csrNewValue(rw, 0xf0, 0x0f), 0x0fu);
    EXPECT_EQ(isa.csrNewValue(rs, 0xf0, 0x0f), 0xffu);
    EXPECT_EQ(isa.csrNewValue(rc, 0xff, 0x0f), 0xf0u);
}

TEST(RiscvExec, EcallRaisesSyscallTrap)
{
    ArchState s = freshState();
    DecodedInst inst = roundTrip([](RiscvAsm &a) { a.ecall(); });
    ExecResult res = isa.execute(inst, s);
    EXPECT_EQ(res.fault, FaultType::SyscallTrap);
    EXPECT_TRUE(res.serializing);
}

TEST(RiscvTrap, EntryAndReturnRoundTrip)
{
    ArchState s = freshState(0x4000);
    s.mode = PrivMode::User;
    s.csrs.write(CSR_STVEC, 0x8000);
    s.csrs.write(CSR_SSTATUS, SSTATUS_SIE);

    Addr handler = isa.takeTrap(s, FaultType::SyscallTrap, 0x4004, 0);
    EXPECT_EQ(handler, 0x8000u);
    EXPECT_EQ(s.mode, PrivMode::Supervisor);
    EXPECT_EQ(s.csrs.read(CSR_SEPC), 0x4004u);
    EXPECT_EQ(s.csrs.read(CSR_SCAUSE),
              std::uint64_t(CAUSE_ECALL_FROM_U));
    // SPP recorded user, SPIE saved the enabled state, SIE cleared.
    RegVal sstatus = s.csrs.read(CSR_SSTATUS);
    EXPECT_FALSE(sstatus & SSTATUS_SPP);
    EXPECT_TRUE(sstatus & SSTATUS_SPIE);
    EXPECT_FALSE(sstatus & SSTATUS_SIE);

    Addr resume = isa.trapReturn(s);
    EXPECT_EQ(resume, 0x4004u);
    EXPECT_EQ(s.mode, PrivMode::User);
    EXPECT_TRUE(s.csrs.read(CSR_SSTATUS) & SSTATUS_SIE);
}

TEST(RiscvTrap, GridFaultsHaveDistinctCauses)
{
    std::set<std::uint64_t> causes;
    for (FaultType f :
         {FaultType::InstPrivilege, FaultType::CsrPrivilege,
          FaultType::CsrMaskViolation, FaultType::GateFault,
          FaultType::TrustedMemoryViolation,
          FaultType::TrustedStackFault}) {
        ArchState s = freshState();
        s.csrs.write(CSR_STVEC, 0x8000);
        isa.takeTrap(s, f, 0x1000, 0);
        causes.insert(s.csrs.read(CSR_SCAUSE));
    }
    EXPECT_EQ(causes.size(), 6u);
}

// ---------------------------------------------------------------------
// Assembler details
// ---------------------------------------------------------------------

TEST(RiscvAsmTest, LiMaterializesArbitraryConstants)
{
    SplitMix64 rng(77);
    std::vector<std::uint64_t> values = {0, 1, 2047, 2048, ~0ull,
                                         0x80000000ull, 0x123456789abcdefull};
    for (int i = 0; i < 40; ++i)
        values.push_back(rng.next());

    for (std::uint64_t v : values) {
        RiscvAsm a(0x1000);
        a.li(9, v);
        auto bytes = a.finalize();
        // Execute the emitted sequence functionally.
        ArchState s = freshState(0x1000);
        Addr pc = 0x1000;
        while (pc < 0x1000 + bytes.size()) {
            DecodedInst inst = isa.decode(
                bytes.data() + (pc - 0x1000), 4, pc);
            ASSERT_TRUE(inst.valid);
            s.pc = pc;
            ExecResult res = isa.execute(inst, s);
            pc = res.next_pc;
        }
        EXPECT_EQ(s.reg(9), v) << std::hex << v;
    }
}

TEST(RiscvAsmTest, LabelBoundTwiceDies)
{
    RiscvAsm a(0);
    auto l = a.newLabel();
    a.bind(l);
    EXPECT_DEATH(a.bind(l), "");
}

TEST(RiscvAsmTest, UnboundLabelDiesAtFinalize)
{
    RiscvAsm a(0);
    auto l = a.newLabel();
    a.jal(0, l);
    EXPECT_DEATH(a.finalize(), "");
}

TEST(RiscvAsmTest, BranchOutOfRangeDies)
{
    RiscvAsm a(0);
    auto l = a.newLabel();
    a.beq(1, 2, l);
    for (int i = 0; i < 2000; ++i)
        a.nop();
    a.bind(l);
    EXPECT_DEATH(a.finalize(), "");
}

TEST(RiscvAsmTest, EmitAfterFinalizeDies)
{
    RiscvAsm a(0);
    a.nop();
    a.finalize();
    EXPECT_DEATH(a.nop(), "");
}
