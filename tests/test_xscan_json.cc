/**
 * @file
 * Golden-file lock on the isagrid-xscan --json report schema.
 *
 * CI parses this output to gate the unintended-instruction audit;
 * field renames or formatting drift must show up as a test diff, not
 * as silent breakage. The golden file is
 * tests/data/xscan_report.golden.json; regenerate it deliberately with
 * ISAGRID_REGEN_GOLDEN=1 after an intentional schema change and commit
 * the diff.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "verify/superset.hh"

using namespace isagrid;

namespace {

std::string
goldenPath()
{
    return std::string(TEST_DATA_DIR) + "/xscan_report.golden.json";
}

/**
 * A report exercising both severities, every verdict, a populated
 * chain, carrier/hidden text needing JSON escaping, and nonzero
 * statistics.
 */
XscanReport
sampleReport()
{
    XscanReport report;
    report.stats.regions = 11;
    report.stats.offsets_scanned = 2011;
    report.stats.hidden_valid = 256;
    report.stats.entry_points = 31;
    report.stats.reachable = 32;
    report.stats.reachable_misaligned = 5;
    report.stats.widened = 1;
    report.stats.discharges = 3;

    XscanFinding escape;
    escape.severity = Severity::Violation;
    escape.check = "ui-priv-escape";
    escape.domain = 1;
    escape.addr = 0x6000c;
    escape.carrier_pc = 0x6000a;
    escape.carrier_text = "movabs r0, 0x1f0fee";
    escape.hidden_text = "out";
    escape.chain = {0x60002, 0x6000c};
    escape.expect = FaultType::InstPrivilege;
    escape.verdict = XscanVerdict::Confirmed;
    escape.message = "out hidden at an unintended offset of "
                     "'attack \"payload\"' is reachable but denied";
    report.add(escape);

    XscanFinding forge;
    forge.severity = Severity::Violation;
    forge.check = "ui-gate-forge";
    forge.domain = 2;
    forge.addr = 0x1042;
    forge.carrier_pc = 0x1040;
    forge.carrier_text = "movabs r4, 0x1a0f";
    forge.hidden_text = "hccall r0";
    forge.chain = {0x1042};
    forge.expect = FaultType::GateFault;
    forge.verdict = XscanVerdict::Discharged;
    forge.message = "gate encoding hidden at an unintended offset\n"
                    "with a second line and a backslash \\";
    report.add(forge);

    XscanFinding benign;
    benign.severity = Severity::Warning;
    benign.check = "ui-priv-escape";
    benign.domain = 0;
    benign.addr = 0x2004;
    benign.carrier_pc = 0;
    benign.hidden_text = "csrrw csr:0x180, r3";
    benign.expect = FaultType::None;
    benign.verdict = XscanVerdict::Plausible;
    benign.message = "permitted sensitive instruction at an "
                     "unintended offset";
    report.add(benign);

    return report;
}

} // namespace

TEST(XscanJson, ReportMatchesGoldenFile)
{
    std::string actual = sampleReport().json();

    if (std::getenv("ISAGRID_REGEN_GOLDEN")) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << actual << "\n";
        GTEST_SKIP() << "golden file regenerated at " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in) << "missing golden file " << goldenPath()
                    << " (run once with ISAGRID_REGEN_GOLDEN=1)";
    std::stringstream buf;
    buf << in.rdbuf();
    std::string expected = buf.str();
    while (!expected.empty() && expected.back() == '\n')
        expected.pop_back();

    EXPECT_EQ(actual, expected)
        << "isagrid-xscan --json schema drifted; if intentional, "
           "regenerate with ISAGRID_REGEN_GOLDEN=1 and commit";
}

TEST(XscanJson, CountsAndVerdictsMatchFindings)
{
    XscanReport report = sampleReport();
    EXPECT_EQ(report.violations(), 2u);
    EXPECT_EQ(report.warnings(), 1u);
    EXPECT_EQ(report.confirmed(), 1u);
    EXPECT_EQ(report.discharged(), 1u);
    EXPECT_EQ(report.plausible(), 1u);
    EXPECT_EQ(report.findings().size(), 3u);
    EXPECT_FALSE(report.clean());

    std::string json = report.json();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    // Escapes survive the rendering.
    EXPECT_NE(json.find("\\\"payload\\\""), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
    EXPECT_NE(json.find("\\\\"), std::string::npos);
}

TEST(XscanJson, SummaryObjectCountsEveryVerdict)
{
    std::string json = sampleReport().json();
    EXPECT_NE(json.find("\"summary\":{\"violations\":2,\"warnings\":1,"
                        "\"confirmed\":1,\"discharged\":1,"
                        "\"plausible\":1,\"total\":3,\"recorded\":3}"),
              std::string::npos)
        << json;
}
