/**
 * @file
 * Metrics/profiler subsystem tests: registry probe and epoch
 * semantics, the PerfMonitor threshold arithmetic the core's
 * single-compare hot path relies on, guest-profiler attribution and
 * collapsed-stack output, the JSON/Prometheus exporters, and the
 * end-to-end acceptance bound — profile sample counts must account
 * for every retired instruction to within one sampling interval.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cpu/machine.hh"
#include "kernel/kernel_builder.hh"
#include "sim/metrics.hh"
#include "sim/profiler.hh"
#include "workloads/lmbench.hh"

using namespace isagrid;

namespace {

/** Run the decomposed lmbench kernel on @p machine. */
RunResult
runDecomposedSuite(Machine &machine, int iters = 3)
{
    Addr entry = buildLmbenchSuite(machine, iters);
    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    KernelBuilder builder(machine, config);
    KernelImage image = builder.build(entry);
    return machine.run(image.boot_pc);
}

/** The profiler region table of a built kernel image. */
std::vector<ProfRegion>
profRegions(const KernelImage &image)
{
    std::vector<ProfRegion> regions;
    for (const CodeRegion &r : image.code_regions)
        regions.push_back({r.base, r.limit, std::uint32_t(r.domain),
                           r.name});
    return regions;
}

} // namespace

TEST(MetricsRegistry, CollectsProbesAndFills)
{
    MetricsRegistry reg;
    double counter = 0;
    reg.addCounter("work.done", [&] { return counter; }, "units done");
    reg.addGauge("queue.depth", [] { return 3.0; });
    reg.addFill([](std::map<std::string, double> &out) {
        out["pcu.domain.2.cache_hits"] = 7;
        out["pcu.domain.2.cache_hit_rate"] = 0.5;
    });

    counter = 42;
    std::map<std::string, double> values;
    reg.collect(values);
    EXPECT_EQ(values.at("work.done"), 42.0);
    EXPECT_EQ(values.at("queue.depth"), 3.0);
    EXPECT_EQ(values.at("pcu.domain.2.cache_hits"), 7.0);

    // Gauge typing: declared, or any fill key naming a rate.
    EXPECT_FALSE(reg.isGauge("work.done"));
    EXPECT_TRUE(reg.isGauge("queue.depth"));
    EXPECT_TRUE(reg.isGauge("pcu.domain.2.cache_hit_rate"));
    EXPECT_FALSE(reg.isGauge("pcu.domain.2.cache_hits"));
    EXPECT_EQ(reg.help("work.done"), "units done");
}

TEST(MetricsRegistry, EpochsRecordCumulativeSeries)
{
    MetricsRegistry reg;
    double counter = 0;
    reg.addCounter("c", [&] { return counter; });

    counter = 10;
    reg.snapshot(1000, 5000);
    counter = 25;
    reg.snapshot(2000, 11000);

    ASSERT_EQ(reg.epochs().size(), 2u);
    const MetricsEpoch &first = reg.epochs()[0];
    const MetricsEpoch &second = reg.epochs()[1];
    EXPECT_EQ(first.index, 0u);
    EXPECT_EQ(first.instructions, 1000u);
    EXPECT_EQ(first.cycles, 5000u);
    EXPECT_EQ(first.values.at("c"), 10.0);
    EXPECT_EQ(second.index, 1u);
    EXPECT_EQ(second.values.at("c"), 25.0);
    EXPECT_GE(second.wall_seconds, first.wall_seconds);

    reg.reset();
    EXPECT_TRUE(reg.epochs().empty());
}

TEST(PerfMonitor, ArmAndTickKeepSingleCompareInvariant)
{
    PerfConfig config;
    config.metrics_interval = 100;
    config.profile_interval = 40;
    PerfMonitor perf(config);
    perf.registry().addCounter("c", [] { return 1.0; });

    // First threshold is the nearer of the two layers.
    EXPECT_EQ(perf.arm(0), 40u);
    EXPECT_TRUE(perf.profileDue(40));
    EXPECT_FALSE(perf.profileDue(39));

    PerfTickInfo info;
    info.instructions = 40;
    info.pc = 0x100;
    info.domain = 1;
    EXPECT_EQ(perf.tick(info), 80u);
    EXPECT_EQ(perf.profiler().samples(), 1u);
    EXPECT_TRUE(perf.registry().epochs().empty());

    info.instructions = 80;
    EXPECT_EQ(perf.tick(info), 100u); // metrics epoch is now nearer
    info.instructions = 100;
    perf.tick(info);
    EXPECT_EQ(perf.registry().epochs().size(), 1u);

    // A long pause past several boundaries yields one sample/epoch,
    // not a replay; the next threshold moves past the current count.
    info.instructions = 1000;
    std::uint64_t next = perf.tick(info);
    EXPECT_GT(next, 1000u);
    EXPECT_EQ(perf.profiler().samples(), 3u);
    EXPECT_EQ(perf.registry().epochs().size(), 2u);

    // finalize() records the tail once.
    perf.finalize(1234, 99);
    perf.finalize(1234, 99);
    EXPECT_EQ(perf.registry().epochs().size(), 3u);
    EXPECT_EQ(perf.registry().epochs().back().instructions, 1234u);
}

TEST(PerfMonitor, ZeroIntervalsDisableALayer)
{
    PerfConfig config;
    config.metrics_interval = 0;
    config.profile_interval = 0;
    PerfMonitor perf(config);
    EXPECT_EQ(perf.arm(0), PerfMonitor::kNever);
}

TEST(GuestProfiler, AttributesSamplesToRegionsAndStacks)
{
    GuestProfiler prof;
    prof.setRegions({{0x2000, 0x3000, 2, "service"},
                     {0x1000, 0x2000, 1, "kernel"}});

    ASSERT_NE(prof.findRegion(0x1000), nullptr);
    EXPECT_EQ(prof.findRegion(0x1fff)->name, "kernel");
    EXPECT_EQ(prof.findRegion(0x2000)->name, "service");
    EXPECT_EQ(prof.findRegion(0x3000), nullptr);
    EXPECT_EQ(prof.findRegion(0x10), nullptr);
    EXPECT_EQ(prof.frameName(0x10, 7), "domain7");

    // Leaf in "service", called through a gate whose return pc sits
    // in "kernel": one collapsed stack "kernel;service".
    PerfFrame chain[1] = {{1, 0x1800}};
    prof.sample(0x2100, 2, 0x2100, chain, 1);
    prof.sample(0x2104, 2, 0x2100, chain, 1);
    prof.sample(0x1400, 1, 0, nullptr, 0);

    EXPECT_EQ(prof.samples(), 3u);
    EXPECT_EQ(prof.pcSamples().at(0x2100), 1u);
    EXPECT_EQ(prof.blockSamples().at(0x2100), 2u);
    EXPECT_EQ(prof.domainSamples().at(2), 2u);
    EXPECT_EQ(prof.regionSamples().at("service"), 2u);
    EXPECT_EQ(prof.regionSamples().at("kernel"), 1u);
    EXPECT_EQ(prof.stacks().at("kernel;service"), 2u);
    EXPECT_EQ(prof.stacks().at("kernel"), 1u);

    std::stringstream collapsed;
    prof.writeCollapsed(collapsed);
    EXPECT_NE(collapsed.str().find("kernel;service 2\n"),
              std::string::npos);
    EXPECT_NE(collapsed.str().find("kernel 1\n"), std::string::npos);

    prof.reset();
    EXPECT_EQ(prof.samples(), 0u);
    EXPECT_TRUE(prof.stacks().empty());
    EXPECT_FALSE(prof.regions().empty()); // regions survive a reset
}

TEST(PerfExport, JsonAndPrometheusRenderAllFamilies)
{
    PerfConfig config;
    config.metrics_interval = 100;
    config.profile_interval = 50;
    PerfMonitor perf(config);
    double hits = 12;
    perf.registry().addCounter("pcu.hits", [&] { return hits; },
                               "privilege cache hits");
    perf.registry().addGauge("mips", [] { return 1.5; });
    perf.registry().addFill([](std::map<std::string, double> &out) {
        out["pcu.domain.1.cache_hits"] = 4;
        out["pcu.domain.2.cache_hits"] = 6;
        out["pcu.domain.2.cache_hit_rate"] = 0.75;
    });
    perf.arm(0);
    PerfTickInfo info;
    info.instructions = 100;
    info.cycles = 400;
    info.pc = 0x800;
    info.domain = 1;
    perf.tick(info);
    perf.finalize(130, 520);

    std::stringstream js;
    perf.writeJson(js);
    const std::string json = js.str();
    EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"metrics_interval\": 100"), std::string::npos);
    EXPECT_NE(json.find("\"instructions\": 130"), std::string::npos);
    EXPECT_NE(json.find("\"pcu.hits\": 12"), std::string::npos);
    EXPECT_NE(json.find("\"profile\""), std::string::npos);
    EXPECT_NE(json.find("\"pc\": \"0x800\""), std::string::npos);

    std::stringstream prom;
    perf.writePrometheus(prom);
    const std::string text = prom.str();
    // Declared counter with its help string.
    EXPECT_NE(text.find("# HELP isagrid_pcu_hits privilege cache hits"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE isagrid_pcu_hits counter"),
              std::string::npos);
    EXPECT_NE(text.find("isagrid_pcu_hits 12\n"), std::string::npos);
    // Declared gauge.
    EXPECT_NE(text.find("# TYPE isagrid_mips gauge"), std::string::npos);
    // Per-domain keys fold into one labeled family.
    EXPECT_NE(text.find("isagrid_pcu_cache_hits{domain=\"1\"} 4"),
              std::string::npos);
    EXPECT_NE(text.find("isagrid_pcu_cache_hits{domain=\"2\"} 6"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE isagrid_pcu_cache_hit_rate gauge"),
              std::string::npos);
    // Profiler totals ride along.
    EXPECT_NE(text.find("isagrid_profile_samples{domain=\"1\"} 1"),
              std::string::npos);
}

TEST(MetricsMachine, SampleCountsAccountForEveryRetiredInstruction)
{
    // The acceptance bound: each profile sample statistically stands
    // for `interval` retired instructions, so the totals must agree
    // to within one interval — on both the interpreter path and the
    // block-engine hot path.
    for (bool block_engine : {false, true}) {
        MachineConfig mconfig;
        mconfig.block_engine = block_engine;
        auto machine = Machine::rocket(mconfig);
        PerfConfig pconfig;
        pconfig.metrics_interval = 500;
        pconfig.profile_interval = 50;
        PerfMonitor &perf = machine->enableMetrics(pconfig);

        RunResult r = runDecomposedSuite(*machine);
        ASSERT_EQ(r.reason, StopReason::Halted);
        std::uint64_t retired = std::uint64_t(
            machine->core().stats().lookup("core.instructions"));
        perf.finalize(retired, 0);

        const GuestProfiler &prof = perf.profiler();
        ASSERT_GT(prof.samples(), 10u) << "block_engine="
                                       << block_engine;
        std::uint64_t attributed =
            prof.samples() * pconfig.profile_interval;
        EXPECT_LE(attributed, retired);
        EXPECT_GT(attributed + pconfig.profile_interval, retired);

        // Every breakdown table sums back to the sample total.
        std::uint64_t by_domain = 0;
        for (const auto &[domain, count] : prof.domainSamples())
            by_domain += count;
        EXPECT_EQ(by_domain, prof.samples());
        std::uint64_t by_pc = 0;
        for (const auto &[pc, count] : prof.pcSamples())
            by_pc += count;
        EXPECT_EQ(by_pc, prof.samples());
        std::uint64_t by_stack = 0;
        for (const auto &[stack, count] : prof.stacks())
            by_stack += count;
        EXPECT_EQ(by_stack, prof.samples());

        // On the hot path most samples land inside translated blocks.
        if (block_engine) {
            std::uint64_t in_blocks = 0;
            for (const auto &[start, count] : prof.blockSamples())
                in_blocks += count;
            EXPECT_GT(in_blocks, 0u);
        }

        // The epoch series covers the full run and carries the
        // per-domain privilege-cache breakdown.
        const MetricsRegistry &reg = perf.registry();
        ASSERT_FALSE(reg.epochs().empty());
        EXPECT_EQ(reg.epochs().back().instructions, retired);
        EXPECT_EQ(reg.epochs().back().values.at("core.instructions"),
                  double(retired));
        bool has_domain_key = false;
        for (const auto &[name, value] : reg.epochs().back().values)
            if (name.rfind("pcu.domain.", 0) == 0)
                has_domain_key = true;
        EXPECT_TRUE(has_domain_key);
        for (std::size_t i = 1; i < reg.epochs().size(); ++i) {
            EXPECT_GT(reg.epochs()[i].instructions,
                      reg.epochs()[i - 1].instructions);
            EXPECT_GE(reg.epochs()[i].wall_seconds,
                      reg.epochs()[i - 1].wall_seconds);
        }
    }
}

TEST(MetricsMachine, ProfilerAttributesKernelRegionsAndGateStacks)
{
    MachineConfig mconfig;
    mconfig.block_engine = true;
    auto machine = Machine::rocket(mconfig);
    PerfConfig pconfig;
    pconfig.profile_interval = 20;
    PerfMonitor &perf = machine->enableMetrics(pconfig);

    Addr entry = buildLmbenchSuite(*machine, 3);
    KernelConfig kconfig;
    kconfig.mode = KernelMode::Decomposed;
    KernelBuilder builder(*machine, kconfig);
    KernelImage image = builder.build(entry);
    ASSERT_FALSE(image.code_regions.empty());
    perf.profiler().setRegions(profRegions(image));

    RunResult r = machine->run(image.boot_pc);
    ASSERT_EQ(r.reason, StopReason::Halted);

    // Samples must resolve to the image's named regions, and the
    // decomposed kernel's gate traffic must surface at least one
    // multi-frame collapsed stack from the trusted stack walk.
    const GuestProfiler &prof = perf.profiler();
    ASSERT_GT(prof.samples(), 0u);
    EXPECT_FALSE(prof.regionSamples().empty());
    bool named = false;
    for (const auto &[name, count] : prof.regionSamples())
        if (name.rfind("domain", 0) != 0)
            named = true;
    EXPECT_TRUE(named);
    bool multi_frame = false;
    for (const auto &[stack, count] : prof.stacks())
        if (stack.find(';') != std::string::npos)
            multi_frame = true;
    EXPECT_TRUE(multi_frame);
}

TEST(MetricsMachine, EnableMetricsIsIdempotent)
{
    auto machine = Machine::rocket();
    PerfMonitor &first = machine->enableMetrics();
    PerfMonitor &second = machine->enableMetrics(
        PerfConfig{1, 1}); // later config must not re-wire
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(machine->perf(), &first);
    EXPECT_EQ(first.config().metrics_interval, 1'000'000u);
}
