/**
 * @file
 * Integration tests: the mini-kernel boots, serves syscalls from user
 * mode, and behaves identically in monolithic and decomposed modes.
 */

#include <gtest/gtest.h>

#include "isa/x86/opcodes.hh"
#include "kernel/kernel_builder.hh"
#include "workloads/apps.hh"
#include "workloads/lmbench.hh"

using namespace isagrid;

namespace {

struct Build
{
    std::unique_ptr<Machine> machine;
    KernelImage image;
};

Build
makeKernel(bool x86, KernelMode mode, unsigned iters)
{
    Build b;
    b.machine = x86 ? Machine::gem5x86() : Machine::rocket();
    Addr user_entry = buildLmbenchSuite(*b.machine, iters);
    KernelConfig config;
    config.mode = mode;
    KernelBuilder builder(*b.machine, config);
    b.image = builder.build(user_entry);
    return b;
}

} // namespace

class KernelModes
    : public ::testing::TestWithParam<std::tuple<bool, KernelMode>>
{
};

TEST_P(KernelModes, LmbenchSuiteRunsToCompletion)
{
    auto [is_x86, mode] = GetParam();
    const unsigned iters = 20;
    Build b = makeKernel(is_x86, mode, iters);
    RunResult r = b.machine->run(b.image.boot_pc, 10'000'000);
    ASSERT_EQ(r.reason, StopReason::Halted)
        << "fault=" << faultName(r.fault) << " pc=" << std::hex
        << r.fault_pc;
    EXPECT_EQ(r.halt_code, 0u);

    auto results = extractLmbenchResults(b.machine->core(), iters);
    ASSERT_EQ(results.size(), numLmbenchOps);
    for (const auto &res : results) {
        EXPECT_GT(res.cycles_per_op, 0.0)
            << lmbenchOpName(res.op);
        EXPECT_LT(res.cycles_per_op, 100000.0)
            << lmbenchOpName(res.op);
    }
    // No privilege faults may fire during normal operation.
    EXPECT_EQ(b.machine->core().faultsTaken(FaultType::InstPrivilege), 0u);
    EXPECT_EQ(b.machine->core().faultsTaken(FaultType::CsrPrivilege), 0u);
    EXPECT_EQ(b.machine->core().faultsTaken(FaultType::CsrMaskViolation),
              0u);
    EXPECT_EQ(b.machine->core().faultsTaken(FaultType::GateFault), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, KernelModes,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(KernelMode::Monolithic,
                                         KernelMode::Decomposed)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) ? "x86" : "riscv";
        name += std::get<1>(info.param) == KernelMode::Monolithic
                    ? "Monolithic" : "Decomposed";
        return name;
    });

TEST(KernelNested, X86NestedMonitorRuns)
{
    const unsigned iters = 10;
    Build b = makeKernel(true, KernelMode::NestedMonitor, iters);
    RunResult r = b.machine->run(b.image.boot_pc, 10'000'000);
    ASSERT_EQ(r.reason, StopReason::Halted)
        << "fault=" << faultName(r.fault);
    EXPECT_EQ(r.halt_code, 0u);
    // The monitor toggled CR0.WP around mapping changes: WP must be
    // set again after the run.
    EXPECT_TRUE(b.machine->core().state().csrs.read(x86::CSR_CR0) &
                x86::CR0_WP);
}

TEST(KernelNested, MonitorLogVariantRuns)
{
    auto machine = Machine::gem5x86();
    Addr user_entry = buildLmbenchSuite(*machine, 10);
    KernelConfig config;
    config.mode = KernelMode::NestedMonitor;
    config.monitor_log = true;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(user_entry);
    RunResult r = machine->run(image.boot_pc, 10'000'000);
    ASSERT_EQ(r.reason, StopReason::Halted);
    // The log ring must have recorded mapping changes.
    EXPECT_GT(machine->mem().read64(layout::monitorLogHead), 0u);
}

TEST(KernelDecomposed, DomainSwitchesHappen)
{
    const unsigned iters = 10;
    Build b = makeKernel(false, KernelMode::Decomposed, iters);
    RunResult r = b.machine->run(b.image.boot_pc, 10'000'000);
    ASSERT_EQ(r.reason, StopReason::Halted);
    // ctx-switch, mmap and the four services each cross domains twice
    // per invocation, plus the boot gate.
    EXPECT_GT(b.machine->pcu().switches(), 2 * iters);
}

TEST(KernelDecomposed, UserCannotTouchTrustedMemory)
{
    auto machine = Machine::rocket();
    // A user program that tries to read the HPT directly.
    auto a = makeRiscvAsm(layout::userCodeBase);
    a->li(a->regUser(0), machine->config().domains.tmem_base);
    a->load64(a->regUser(1), a->regUser(0), 0);
    a->li(a->regArg(0), 0);
    a->halt(a->regArg(0));
    a->loadInto(machine->mem());

    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(layout::userCodeBase);
    RunResult r = machine->run(image.boot_pc, 1'000'000);
    // The load faults; the kernel has no recovery address registered,
    // so the trap handler halts with the 0xdead code.
    ASSERT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(r.halt_code, 0xdeadu);
    EXPECT_EQ(machine->core().faultsTaken(
                  FaultType::TrustedMemoryViolation), 1u);
}

class AppProfiles
    : public ::testing::TestWithParam<std::tuple<bool, int>>
{
};

TEST_P(AppProfiles, RunsAndReportsRoi)
{
    auto [is_x86, app_index] = GetParam();
    auto profiles = AppProfile::all();
    AppProfile profile = profiles[app_index];
    profile.total_blocks = 800; // keep unit tests fast

    auto machine = is_x86 ? Machine::gem5x86() : Machine::rocket();
    Addr entry = buildApp(*machine, profile);
    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(entry);
    RunResult r = machine->run(image.boot_pc, 50'000'000);
    ASSERT_EQ(r.reason, StopReason::Halted)
        << profile.name << " fault=" << faultName(r.fault);
    EXPECT_GT(appRoiCycles(machine->core()), 0u);
    EXPECT_GT(appRoiInstructions(machine->core()), 1000u);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppProfiles,
    ::testing::Combine(::testing::Bool(), ::testing::Range(0, 4)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) ? "x86_" : "riscv_";
        return name + AppProfile::all()[std::get<1>(info.param)].name;
    });

TEST(KernelTStacks, PerThreadStacksSwitchInDomain0)
{
    auto machine = Machine::rocket();
    // User program: interleave gated services (which push/pop the
    // trusted stack via hccalls/hcrets) with context switches.
    auto ua = makeRiscvAsm(layout::userCodeBase);
    auto sys = [&](Sys s) {
        ua->li(ua->regArg(0), std::uint64_t(s));
        ua->syscallInst();
    };
    sys(Sys::ServiceCpuid);
    sys(Sys::CtxSwitch);
    sys(Sys::ServiceMtrr);
    sys(Sys::CtxSwitch);
    sys(Sys::ServiceCpuid);
    ua->li(ua->regArg(0), 0);
    ua->halt(ua->regArg(0));
    ua->loadInto(machine->mem());

    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    config.per_thread_tstack = true;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(layout::userCodeBase);
    RunResult r = machine->run(image.boot_pc, 10'000'000);
    ASSERT_EQ(r.reason, StopReason::Halted)
        << "fault=" << faultName(r.fault) << " pc=" << std::hex
        << r.fault_pc;

    // Two switches: back on thread 0 with its window installed and an
    // empty stack (all extended calls returned).
    Addr base = machine->domains().trustedStackBase();
    Addr ctx = machine->domains().trustedStackLimit() - 64;
    std::uint64_t window = (ctx - base) / 2;
    auto &pcu = machine->pcu();
    EXPECT_EQ(pcu.gridReg(GridReg::Hcsb), base);
    EXPECT_EQ(pcu.gridReg(GridReg::Hcsl), base + window);
    EXPECT_EQ(pcu.gridReg(GridReg::Hcsp), base);
    // Thread 1's saved pointer sits at the bottom of its own window.
    EXPECT_EQ(machine->mem().read64(ctx + 8), base + window);
    EXPECT_EQ(machine->core().faultsTaken(FaultType::TrustedStackFault),
              0u);
}

TEST(KernelTStacks, RequiresDecomposedMode)
{
    auto machine = Machine::rocket();
    KernelConfig config;
    config.mode = KernelMode::Monolithic;
    config.per_thread_tstack = true;
    KernelBuilder builder(*machine, config);
    EXPECT_DEATH(builder.build(layout::userCodeBase), "");
}

TEST(KernelTimer, PreemptiveSwitchesDriveTheCtxPath)
{
    AppProfile profile = AppProfile::mbedtls(); // barely syscalls
    profile.total_blocks = 4000;
    // CtxSwitch only via the timer: strip it from the syscall mix.
    profile.syscall_mix = {Sys::Getpid, Sys::Write, Sys::Getpid,
                           Sys::Write};

    auto machine = Machine::rocket();
    Addr entry = buildApp(*machine, profile);
    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    config.timer_interval = 20000;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(entry);
    RunResult r = machine->run(image.boot_pc, 100'000'000);
    ASSERT_EQ(r.reason, StopReason::Halted)
        << "fault=" << faultName(r.fault);

    std::uint64_t ticks =
        machine->core().faultsTaken(FaultType::TimerInterrupt);
    EXPECT_GT(ticks, 10u) << "the timer must have fired";
    // Each tick crosses into the MM domain and back for the page-table
    // root switch.
    EXPECT_GT(machine->pcu().switches(), 2 * ticks);
    // Roughly one tick per interval over the user-mode run time.
    EXPECT_LT(ticks, r.cycles / 20000 + 2);
}

TEST(KernelTimer, TimerPlusPerThreadStacks)
{
    AppProfile profile = AppProfile::sqlite(); // gated services too
    profile.total_blocks = 4000;
    auto machine = Machine::rocket();
    Addr entry = buildApp(*machine, profile);
    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    config.timer_interval = 15000;
    config.per_thread_tstack = true;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(entry);
    RunResult r = machine->run(image.boot_pc, 100'000'000);
    ASSERT_EQ(r.reason, StopReason::Halted)
        << "fault=" << faultName(r.fault);
    EXPECT_GT(machine->core().faultsTaken(FaultType::TimerInterrupt),
              5u);
    EXPECT_EQ(machine->core().faultsTaken(FaultType::TrustedStackFault),
              0u);
}

TEST(KernelTimer, MonolithicTimerWorksToo)
{
    AppProfile profile = AppProfile::gzip();
    profile.total_blocks = 2000;
    auto machine = Machine::gem5x86();
    Addr entry = buildApp(*machine, profile);
    KernelConfig config;
    config.mode = KernelMode::Monolithic;
    config.timer_interval = 10000;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(entry);
    RunResult r = machine->run(image.boot_pc, 100'000'000);
    ASSERT_EQ(r.reason, StopReason::Halted)
        << "fault=" << faultName(r.fault);
    EXPECT_GT(machine->core().faultsTaken(FaultType::TimerInterrupt),
              3u);
}

TEST(KernelKaslr, SlidKernelWorksBecauseGatesRegisterAfterLoad)
{
    // Section 5.2: gates/domains are registered after the (randomized)
    // load address is known, so KASLR needs no special support.
    for (Addr slide : {Addr{0x7000}, Addr{0x19000}, Addr{0x2c000}}) {
        auto machine = Machine::rocket();
        Addr entry = buildLmbenchSuite(*machine, 5);
        KernelConfig config;
        config.mode = KernelMode::Decomposed;
        config.code_base = slide;
        KernelBuilder builder(*machine, config);
        KernelImage image = builder.build(entry);
        EXPECT_GE(image.boot_pc, slide);
        RunResult r = machine->run(image.boot_pc, 20'000'000);
        EXPECT_EQ(r.reason, StopReason::Halted)
            << "slide " << std::hex << slide << " fault "
            << faultName(r.fault);
        EXPECT_EQ(machine->core().faultsTaken(FaultType::GateFault),
                  0u);
    }
}

TEST(KernelRecovery, RegisteredRecoveryAddressResumesAfterFault)
{
    auto machine = Machine::rocket();
    // User program: try a privileged instruction; the kernel's trap
    // path resumes at the registered recovery point.
    auto ua = makeRiscvAsm(layout::userCodeBase);
    auto recovery = ua->newLabel();
    ua->li(ua->regUser(0), 0);
    ua->flushTlb(); // sfence.vma from user mode: illegal-instruction
    ua->li(ua->regUser(0), 0xbad); // skipped via recovery
    ua->bind(recovery);
    ua->li(ua->regArg(0), 0);
    ua->halt(ua->regArg(0));
    ua->loadInto(machine->mem());
    Addr recovery_addr = ua->labelAddr(recovery);

    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(layout::userCodeBase);
    machine->mem().write64(layout::recoveryAddr, recovery_addr);

    RunResult r = machine->run(image.boot_pc, 1'000'000);
    ASSERT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(r.halt_code, 0u);
    EXPECT_EQ(machine->core().state().reg(
                  makeRiscvAsm(0)->regUser(0)), 0u)
        << "the faulting path's continuation must have been skipped";
    EXPECT_EQ(machine->mem().read64(layout::faultCount), 1u);
    EXPECT_EQ(machine->mem().read64(layout::lastFaultCause), 2u);
}

TEST(KernelRun, MaxInstructionsStopsCleanly)
{
    auto machine = Machine::rocket();
    auto ua = makeRiscvAsm(layout::userCodeBase);
    auto loop = ua->newLabel();
    ua->bind(loop);
    ua->jmp(loop); // spin forever
    ua->loadInto(machine->mem());
    KernelConfig config;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(layout::userCodeBase);
    RunResult r = machine->run(image.boot_pc, 5000);
    EXPECT_EQ(r.reason, StopReason::MaxInstructions);
    EXPECT_EQ(r.instructions, 5000u);
}

TEST(KernelDecomposed, CannotExecuteCodeFromTrustedMemory)
{
    auto machine = Machine::rocket();
    Addr tmem = machine->config().domains.tmem_base;
    // User program jumps straight into the trusted region (SGT bytes).
    auto ua = makeRiscvAsm(layout::userCodeBase);
    ua->jmpAbs(tmem + 64, ua->regTmp(0));
    ua->loadInto(machine->mem());

    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(layout::userCodeBase);
    RunResult r = machine->run(image.boot_pc, 1'000'000);
    // The kernel's other-trap path halts with 0xdead (no recovery).
    ASSERT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(r.halt_code, 0xdeadu);
    EXPECT_EQ(machine->core().faultsTaken(
                  FaultType::TrustedMemoryViolation), 1u);
}

TEST(KernelDomainUsage, AttributesTimeToEveryDomain)
{
    AppProfile profile = AppProfile::sqlite();
    profile.total_blocks = 2000;
    auto machine = Machine::rocket();
    Addr entry = buildApp(*machine, profile);
    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(entry);
    RunResult r = machine->run(image.boot_pc, 100'000'000);
    ASSERT_EQ(r.reason, StopReason::Halted);

    const auto &usage = machine->core().domainUsage();
    // Domain-0 (boot), the basic kernel domain and the MM domain all
    // executed; the basic domain (user + most kernel code) dominates.
    ASSERT_TRUE(usage.count(0));
    ASSERT_TRUE(usage.count(image.kernel_domain));
    ASSERT_TRUE(usage.count(image.mm_domain));
    std::uint64_t insts = 0;
    Cycle cycles = 0;
    for (const auto &[d, u] : usage) {
        insts += u.instructions;
        cycles += u.cycles;
    }
    EXPECT_EQ(insts, r.instructions);
    EXPECT_EQ(cycles, r.cycles);
    EXPECT_GT(usage.at(image.kernel_domain).cycles, r.cycles / 2);
}
