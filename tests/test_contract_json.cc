/**
 * @file
 * Golden-file lock on the isagrid-contract --json report schema.
 *
 * CI and the fuzzing harness parse this output; field renames or
 * formatting drift must show up as a test diff, not as a silent
 * breakage. The golden file is tests/data/contract_report.golden.json;
 * regenerate it deliberately with ISAGRID_REGEN_GOLDEN=1 after an
 * intentional schema change and commit the diff.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "contract/contract.hh"

using namespace isagrid;

namespace {

std::string
goldenPath()
{
    return std::string(TEST_DATA_DIR) + "/contract_report.golden.json";
}

/**
 * A report exercising every verdict, both severities, all three check
 * families (with the dyn-divergence extra fields and a rel-* trace),
 * and message characters that need escaping.
 */
ContractReport
sampleReport()
{
    ContractReport report;

    ContractFinding dyn;
    dyn.severity = Severity::Violation;
    dyn.check = "dyn-divergence";
    dyn.domain = 2;
    dyn.csr_addr = 0x180;
    dyn.message = "domain 2's view diverges after a masked write by "
                  "domain 1 (\"high\" input)";
    dyn.step = 731;
    dyn.pc = 0x1468;
    dyn.divergence = "reg a0: 0x0 vs 0x2\ntainted by csr 0x180";
    dyn.verdict = ContractVerdict::Confirmed;
    report.findings.push_back(dyn);

    ContractFinding rel;
    rel.severity = Severity::Warning;
    rel.check = "rel-mask-observe";
    rel.domain = 3;
    rel.csr_addr = 0x100;
    rel.message = "readable mask bits overlap a higher domain's "
                  "write mask \\ composition window";
    TraceStep step;
    step.kind = TraceStep::Kind::CsrWrite;
    step.csr_addr = 0x100;
    step.flip = 0x4;
    step.masked = true;
    step.domain_before = 1;
    step.domain_after = 1;
    rel.trace.push_back(step);
    rel.verdict = ContractVerdict::Discharged;
    report.findings.push_back(rel);

    ContractFinding flow;
    flow.severity = Severity::Violation;
    flow.check = "rel-high-flow";
    flow.domain = 1;
    flow.message = "high CSR state flows into domain 1's observable "
                   "window";
    flow.src_csrs = {0x100, 0x180};
    flow.verdict = ContractVerdict::Plausible;
    report.findings.push_back(flow);

    report.stats.windows = 4;
    report.stats.steps_compared = 20000;
    report.stats.forks = 12;
    report.stats.rel_states = 2048;
    report.stats.rel_transitions = 8192;
    report.stats.discharges = 3;
    return report;
}

} // namespace

TEST(ContractJson, ReportMatchesGoldenFile)
{
    std::string actual = sampleReport().json();

    if (std::getenv("ISAGRID_REGEN_GOLDEN")) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << actual << "\n";
        GTEST_SKIP() << "golden file regenerated at " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in) << "missing golden file " << goldenPath()
                    << " (run once with ISAGRID_REGEN_GOLDEN=1)";
    std::stringstream buf;
    buf << in.rdbuf();
    std::string expected = buf.str();
    while (!expected.empty() && expected.back() == '\n')
        expected.pop_back();

    EXPECT_EQ(actual, expected)
        << "isagrid-contract --json schema drifted; if intentional, "
           "regenerate with ISAGRID_REGEN_GOLDEN=1 and commit";
}

TEST(ContractJson, SummaryCountsMatchVerdicts)
{
    ContractReport report = sampleReport();
    EXPECT_EQ(report.violations(), 2u);
    EXPECT_EQ(report.warnings(), 1u);
    EXPECT_EQ(report.confirmed(), 1u);
    EXPECT_EQ(report.discharged(), 1u);
    EXPECT_EQ(report.plausible(), 1u);
    EXPECT_FALSE(report.clean());

    std::string json = report.json();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    // Escapes survive the rendering.
    EXPECT_NE(json.find("\\\"high\\\""), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
    EXPECT_NE(json.find("\\\\"), std::string::npos);
}

TEST(ContractJson, EmptyReportIsClean)
{
    ContractReport report;
    EXPECT_TRUE(report.clean());
    std::string json = report.json();
    EXPECT_NE(json.find("\"violations\":0"), std::string::npos);
    EXPECT_NE(json.find("\"findings\":[]"), std::string::npos);
}
