/**
 * @file
 * Counterexample-replay edge cases (modelcheck/replay.hh).
 *
 * The replay machinery underwrites two contracts the rest of the tree
 * leans on: a trace that crosses a trusted-stack underflow must drive
 * the simulator through the exact fault the checker predicted, and
 * replay must be deterministic — the same trace on the same machine
 * yields the same outcome however often it runs, with no architectural
 * residue leaking from one replay into the next. The contract
 * checker's scenario forks (src/contract) assume exactly this
 * build-twice-get-identical-machines determinism.
 */

#include <gtest/gtest.h>

#include "attacks/attacks.hh"
#include "modelcheck/modelcheck.hh"
#include "modelcheck/replay.hh"

using namespace isagrid;

namespace {

/** The prepared ROP-style attack plus its checked counterexamples. */
struct CheckedAttack
{
    PreparedAttack prepared;
    PolicySnapshot snap;
    McResult result;
};

CheckedAttack
checkRopAttack(bool x86)
{
    CheckedAttack c;
    for (const AttackScenario &s : attackScenarios(x86)) {
        if (s.name.find("hcrets") == std::string::npos)
            continue;
        c.prepared = prepareAttack(s, x86, true);
        c.snap = PolicySnapshot::fromPcu(c.prepared.machine->pcu());
        ModelChecker checker(c.prepared.machine->isa(),
                             c.prepared.machine->mem(), c.snap,
                             c.prepared.image.code_regions,
                             c.prepared.payload_domain, {});
        c.result = checker.run();
        return c;
    }
    ADD_FAILURE() << "no hcrets attack scenario for "
                  << (x86 ? "x86" : "riscv");
    return c;
}

const McViolation *
findCheck(const McResult &result, const std::string &check)
{
    for (const McViolation &f : result.findings)
        if (f.check == check)
            return &f;
    return nullptr;
}

} // namespace

// ---------------------------------------------------------------------
// A counterexample crossing a trusted-stack underflow replays cleanly
// ---------------------------------------------------------------------

class ReplayUnderflow : public ::testing::TestWithParam<bool>
{
};

TEST_P(ReplayUnderflow, UnderflowTraceDrivesPredictedFault)
{
    CheckedAttack c = checkRopAttack(GetParam());
    const McViolation *f = findCheck(c.result, "mc-ret-underflow");
    ASSERT_NE(f, nullptr) << c.result.text();
    ASSERT_FALSE(f->trace.empty());
    // The trace's final step is the empty-stack hcrets itself, and the
    // prediction is the PCU's trusted-stack fault — not a decode error
    // or a generic privilege fault.
    EXPECT_EQ(f->trace.back().expect, FaultType::TrustedStackFault);

    ReplayResult r = replayTrace(*c.prepared.machine, f->trace, c.snap,
                                 c.prepared.payload_domain);
    EXPECT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.steps_run, f->trace.size());
}

INSTANTIATE_TEST_SUITE_P(Isas, ReplayUnderflow, ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? "x86" : "riscv";
                         });

// ---------------------------------------------------------------------
// Replay determinism
// ---------------------------------------------------------------------

TEST(ReplayDeterminism, SameTraceTwiceOnOneMachineIsIdentical)
{
    CheckedAttack c = checkRopAttack(false);
    const McViolation *f = findCheck(c.result, "mc-ret-underflow");
    ASSERT_NE(f, nullptr) << c.result.text();

    ReplayResult first = replayTrace(*c.prepared.machine, f->trace,
                                     c.snap,
                                     c.prepared.payload_domain);
    ReplayResult second = replayTrace(*c.prepared.machine, f->trace,
                                      c.snap,
                                      c.prepared.payload_domain);
    EXPECT_EQ(first.ok, second.ok) << second.detail;
    EXPECT_EQ(first.steps_run, second.steps_run);
    EXPECT_EQ(first.detail, second.detail);
}

TEST(ReplayDeterminism, EveryViolationReplaysIdenticallyBackToBack)
{
    // Interleave replays of *different* traces and then repeat the
    // whole sequence: any residue a replay leaves behind (a stale
    // trusted-stack frame, an unflushed privilege cache, a clobbered
    // CSR) skews the second pass.
    CheckedAttack c = checkRopAttack(true);
    std::vector<ReplayResult> first, second;
    for (int pass = 0; pass < 2; ++pass) {
        std::vector<ReplayResult> &out = pass == 0 ? first : second;
        for (const McViolation &f : c.result.findings) {
            if (f.severity != Severity::Violation)
                continue;
            out.push_back(replayTrace(*c.prepared.machine, f.trace,
                                      c.snap,
                                      c.prepared.payload_domain));
        }
    }
    ASSERT_FALSE(first.empty());
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].ok, second[i].ok) << second[i].detail;
        EXPECT_EQ(first[i].steps_run, second[i].steps_run);
        EXPECT_EQ(first[i].detail, second[i].detail);
    }
}

TEST(ReplayDeterminism, TwoIdenticalBuildsRunIdentically)
{
    // The contract checker's fork-and-lockstep oracle builds the same
    // scenario twice and requires bit-identical execution. Underwrite
    // that: two independently prepared machines, run for the same
    // budget, must agree on the stop reason and the architectural
    // state they end in.
    for (bool x86 : {false, true}) {
        for (const AttackScenario &s : attackScenarios(x86)) {
            if (s.name.find("hcrets") == std::string::npos)
                continue;
            PreparedAttack a = prepareAttack(s, x86, true);
            PreparedAttack b = prepareAttack(s, x86, true);
            a.machine->core().reset(a.payload_entry);
            b.machine->core().reset(b.payload_entry);
            a.machine->pcu().setGridReg(GridReg::Domain,
                                        a.payload_domain);
            b.machine->pcu().setGridReg(GridReg::Domain,
                                        b.payload_domain);
            RunResult ra = a.machine->core().run(1000);
            RunResult rb = b.machine->core().run(1000);
            EXPECT_EQ(ra.reason, rb.reason);
            EXPECT_EQ(ra.fault, rb.fault);
            EXPECT_EQ(ra.halt_code, rb.halt_code);
            const ArchState &sa = a.machine->core().state();
            const ArchState &sb = b.machine->core().state();
            EXPECT_EQ(sa.pc, sb.pc);
            EXPECT_EQ(sa.cycle, sb.cycle);
            for (unsigned r = 0; r < a.machine->isa().numRegs(); ++r)
                EXPECT_EQ(sa.regs[r], sb.regs[r]) << "reg " << r;
        }
    }
}
