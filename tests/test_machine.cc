/**
 * @file
 * Machine assembly tests: factory configurations match the paper's
 * prototypes (Table 3 / the Rocket setup), stats plumbing, and
 * config plumbing into the PCU and trusted memory.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cpu/machine.hh"
#include "isa/riscv/assembler.hh"

using namespace isagrid;

TEST(Machine, RocketFactoryMatchesPrototype)
{
    auto m = Machine::rocket();
    EXPECT_EQ(m->isa().name(), "rv64");
    // Small blocking L1s in front of long-latency DRAM: a full miss
    // costs >120 cycles (Table 4's load/store row).
    EXPECT_EQ(m->icacheHierarchy().numLevels(), 1u);
    EXPECT_GE(m->dcacheHierarchy().missLatency(), 120u);
}

TEST(Machine, Gem5X86FactoryMatchesTable3)
{
    auto m = Machine::gem5x86();
    EXPECT_EQ(m->isa().name(), "x86");
    auto &d = m->dcacheHierarchy();
    ASSERT_EQ(d.numLevels(), 3u);
    EXPECT_EQ(d.level(0).params().size_bytes, 32u * 1024);
    EXPECT_EQ(d.level(0).params().assoc, 4u);
    EXPECT_EQ(d.level(0).params().hit_latency, 2u);
    EXPECT_EQ(d.level(1).params().size_bytes, 256u * 1024);
    EXPECT_EQ(d.level(1).params().assoc, 16u);
    EXPECT_EQ(d.level(1).params().hit_latency, 20u);
    EXPECT_EQ(d.level(2).params().size_bytes, 2u * 1024 * 1024);
    EXPECT_EQ(d.level(2).params().hit_latency, 32u);
    EXPECT_GE(d.missLatency(), 200u); // Table 4's >200 row
}

TEST(Machine, TrustedMemorySitsAtTopOfRam)
{
    auto m = Machine::rocket();
    const auto &dm_cfg = m->config().domains;
    EXPECT_EQ(dm_cfg.tmem_base + dm_cfg.tmem_size, m->mem().size());
    EXPECT_TRUE(m->pcu().trustedMemory().enabled());
    EXPECT_EQ(m->pcu().gridReg(GridReg::Tmemb), dm_cfg.tmem_base);
}

TEST(Machine, PcuConfigPropagates)
{
    MachineConfig config;
    config.pcu = PcuConfig::config16E();
    auto m = Machine::rocket(config);
    EXPECT_EQ(m->pcu().instCache().numEntries(), 16u);
    EXPECT_EQ(m->pcu().sgtCache().numEntries(), 16u);

    config.pcu = PcuConfig::config8EN();
    auto m2 = Machine::gem5x86(config);
    EXPECT_EQ(m2->pcu().sgtCache().numEntries(), 0u);
}

TEST(Machine, DumpStatsContainsAllSubsystems)
{
    auto m = Machine::rocket();
    riscv::RiscvAsm a(0x1000);
    a.li(5, 0x100000);
    a.ld(6, 5, 0);
    a.halt(6);
    a.loadInto(m->mem());
    m->run(0x1000);

    std::ostringstream os;
    m->dumpStats(os);
    std::string out = os.str();
    for (const char *needle :
         {"core.instructions", "core.loads", "pcu.inst_checks",
          "pcu.switches", "pcu.inst_cache.hits", "pcu.sgt_cache.hits",
          "icache.hierarchy.l1i.hits", "dcache.hierarchy.l1d.misses",
          "dcache.hierarchy.mem_accesses"}) {
        EXPECT_NE(out.find(needle), std::string::npos) << needle;
    }
}

TEST(Machine, RunResetsBetweenInvocations)
{
    auto m = Machine::rocket();
    riscv::RiscvAsm a(0x1000);
    a.li(10, 3);
    a.halt(10);
    a.loadInto(m->mem());
    RunResult r1 = m->run(0x1000);
    RunResult r2 = m->run(0x1000);
    EXPECT_EQ(r1.halt_code, r2.halt_code);
    // Architectural state resets; microarchitectural cache warmth
    // persists, so the second run can only be cheaper.
    EXPECT_LE(r2.cycles, r1.cycles);
    EXPECT_EQ(r1.instructions, r2.instructions);
}

TEST(Machine, MemorySizeIsConfigurable)
{
    MachineConfig config;
    config.mem_bytes = 16ull * 1024 * 1024;
    auto m = Machine::rocket(config);
    EXPECT_EQ(m->mem().size(), 16ull * 1024 * 1024);
    EXPECT_EQ(m->config().domains.tmem_base +
                  m->config().domains.tmem_size,
              m->mem().size());
}
