/**
 * @file
 * isagrid-minpriv — CFG-based least-privilege inference and policy
 * minimization for guest images and domain configurations.
 *
 * Builds a mini-kernel configuration, infers what each domain's
 * reachable code actually needs from the PCU (src/verify/dataflow.hh),
 * synthesizes the minimal policy (src/verify/minimize.hh) and diffs it
 * against the configured HPT:
 *
 *   isagrid-minpriv [options]
 *     --arch=riscv|x86          target prototype       [riscv]
 *     --mode=native|decomposed|nested                  [decomposed]
 *     --timer=N                 timer interrupt period [0 = off]
 *     --tstacks                 per-thread trusted stacks
 *     --overprovision           add deliberate policy drift first
 *     --diff                    report every over-grant (default)
 *     --emit-policy=FILE        write the minimized policy as JSON
 *     --validate                differential validation: the attack
 *                               corpus stays blocked and the benign
 *                               workloads behave identically under
 *                               the minimized policy
 *     --json                    machine-readable output
 *
 * Exit status: 0 on success (and, with --validate, every differential
 * check passing), 1 when the minimized policy is not a subset of the
 * configured one or a validation check fails, 2 on usage errors.
 *
 * Examples:
 *   isagrid-minpriv --arch=x86 --mode=nested --diff
 *   isagrid-minpriv --overprovision --emit-policy=minimized.json
 *   isagrid-minpriv --arch=riscv --validate
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "attacks/attacks.hh"
#include "kernel/kernel_builder.hh"
#include "kernel/layout.hh"
#include "verify/dataflow.hh"
#include "verify/minimize.hh"
#include "workloads/apps.hh"
#include "workloads/lmbench.hh"

using namespace isagrid;

namespace {

struct Options
{
    bool x86 = false;
    KernelMode mode = KernelMode::Decomposed;
    Cycle timer = 0;
    bool tstacks = false;
    bool overprovision = false;
    bool validate = false;
    bool json = false;
    std::string emit_policy;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--arch=riscv|x86] "
                 "[--mode=native|decomposed|nested]\n"
                 "  [--timer=N] [--tstacks] [--overprovision] [--diff]\n"
                 "  [--emit-policy=FILE] [--validate] [--json]\n",
                 argv0);
    std::exit(2);
}

bool
eat(const char *arg, const char *key, std::string &value)
{
    std::size_t len = std::strlen(key);
    if (std::strncmp(arg, key, len) == 0 && arg[len] == '=') {
        value = arg + len + 1;
        return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (eat(argv[i], "--arch", v)) {
            if (v == "x86")
                opt.x86 = true;
            else if (v != "riscv")
                usage(argv[0]);
        } else if (eat(argv[i], "--mode", v)) {
            if (v == "native")
                opt.mode = KernelMode::Monolithic;
            else if (v == "decomposed")
                opt.mode = KernelMode::Decomposed;
            else if (v == "nested")
                opt.mode = KernelMode::NestedMonitor;
            else
                usage(argv[0]);
        } else if (eat(argv[i], "--timer", v)) {
            opt.timer = std::stoull(v);
        } else if (eat(argv[i], "--emit-policy", v)) {
            if (v.empty())
                usage(argv[0]);
            opt.emit_policy = v;
        } else if (std::strcmp(argv[i], "--tstacks") == 0) {
            opt.tstacks = true;
        } else if (std::strcmp(argv[i], "--overprovision") == 0) {
            opt.overprovision = true;
        } else if (std::strcmp(argv[i], "--diff") == 0) {
            // The default action; accepted for explicitness.
        } else if (std::strcmp(argv[i], "--validate") == 0) {
            opt.validate = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opt.json = true;
        } else {
            usage(argv[0]);
        }
    }
    return opt;
}

KernelConfig
kernelConfig(const Options &opt, bool minimize)
{
    KernelConfig config;
    config.mode = opt.mode;
    config.timer_interval = opt.timer;
    config.per_thread_tstack = opt.tstacks;
    config.overprovision = opt.overprovision;
    config.minimize_policy = minimize;
    return config;
}

/** Build the kernel and run the inference + minimization over it. */
MinimizeResult
analyse(const Options &opt)
{
    auto machine = opt.x86 ? Machine::gem5x86() : Machine::rocket();

    auto ua = opt.x86 ? makeX86Asm(layout::userCodeBase)
                      : makeRiscvAsm(layout::userCodeBase);
    ua->li(ua->regArg(0), 0);
    ua->halt(ua->regArg(0));
    ua->loadInto(machine->mem());

    KernelBuilder builder(*machine, kernelConfig(opt, false));
    KernelImage image = builder.build(layout::userCodeBase);

    PolicySnapshot snap = PolicySnapshot::fromPcu(machine->pcu());
    PrivilegeInference inference(machine->isa(), machine->mem(), snap,
                                 image.code_regions);
    inference.addEntry(image.kernel_domain, image.trap_entry);
    return minimizePolicy(machine->isa(), machine->mem(), snap,
                          inference);
}

/** One differential check: baseline vs minimized-policy run. */
struct Differential
{
    std::string name;
    bool passed = false;
    std::string detail;
};

bool
sameOutcome(const RunResult &a, const RunResult &b)
{
    return a.reason == b.reason && a.halt_code == b.halt_code &&
           a.fault == b.fault && a.instructions == b.instructions;
}

std::string
describe(const RunResult &r)
{
    return "reason=" + std::to_string(static_cast<int>(r.reason)) +
           " halt=" + std::to_string(r.halt_code) + " fault=" +
           faultName(r.fault) + " insts=" +
           std::to_string(r.instructions);
}

RunResult
runWorkload(const Options &opt, bool minimize,
            const std::function<Addr(Machine &)> &build_user)
{
    auto machine = opt.x86 ? Machine::gem5x86() : Machine::rocket();
    Addr entry = build_user(*machine);
    KernelBuilder builder(*machine, kernelConfig(opt, minimize));
    KernelImage image = builder.build(entry);
    return machine->run(image.boot_pc);
}

Differential
diffWorkload(const Options &opt, const std::string &name,
             const std::function<Addr(Machine &)> &build_user)
{
    RunResult base = runWorkload(opt, false, build_user);
    RunResult mini = runWorkload(opt, true, build_user);
    Differential d{name, sameOutcome(base, mini), ""};
    if (!d.passed)
        d.detail = "baseline " + describe(base) + " vs minimized " +
                   describe(mini);
    return d;
}

AttackOutcome
runPreparedAttack(PreparedAttack &prepared, bool minimize)
{
    Machine &machine = *prepared.machine;
    if (minimize) {
        PolicySnapshot snap = PolicySnapshot::fromPcu(machine.pcu());
        PrivilegeInference inference(machine.isa(), machine.mem(),
                                     snap, prepared.image.code_regions);
        inference.addEntry(prepared.image.kernel_domain,
                           prepared.image.trap_entry);
        inference.addEntry(prepared.payload_domain,
                           prepared.payload_entry);
        MinimizeResult minimized =
            minimizePolicy(machine.isa(), machine.mem(), snap,
                           inference);
        applyMinimizedPolicy(machine.isa(), machine.mem(), snap,
                             minimized, &machine.pcu());
    }
    machine.core().reset(prepared.payload_entry);
    machine.pcu().setGridReg(GridReg::Domain, prepared.payload_domain);
    RunResult r = machine.core().run(100'000);
    AttackOutcome outcome;
    outcome.reached_halt = r.reason == StopReason::Halted;
    outcome.blocked = r.reason == StopReason::UnhandledFault;
    outcome.fault = r.fault;
    return outcome;
}

std::vector<Differential>
validate(const Options &opt)
{
    std::vector<Differential> checks;

    // The attack corpus must stay blocked: minimization only ever
    // removes privilege, so an attack the configured policy stopped
    // cannot start succeeding — verified by running each payload
    // under both policies.
    for (const AttackScenario &s : attackScenarios(opt.x86)) {
        PreparedAttack base = prepareAttack(s, opt.x86, true);
        AttackOutcome before = runPreparedAttack(base, false);
        PreparedAttack mini = prepareAttack(s, opt.x86, true);
        AttackOutcome after = runPreparedAttack(mini, true);
        Differential d{"attack: " + s.name,
                       before.blocked == after.blocked &&
                           before.reached_halt == after.reached_halt,
                       ""};
        if (!d.passed)
            d.detail = std::string("blocked ") +
                       (before.blocked ? "yes" : "no") + " -> " +
                       (after.blocked ? "yes" : "no");
        checks.push_back(d);
    }

    // Benign workloads must behave identically.
    checks.push_back(diffWorkload(opt, "lmbench", [](Machine &m) {
        return buildLmbenchSuite(m, 40);
    }));
    for (const AppProfile &profile : AppProfile::all()) {
        AppProfile small = profile;
        small.total_blocks = 2000;
        checks.push_back(
            diffWorkload(opt, "app: " + profile.name,
                         [small](Machine &m) {
                             return buildApp(m, small);
                         }));
    }
    return checks;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);

    MinimizeResult result = analyse(opt);

    if (!opt.emit_policy.empty()) {
        std::FILE *f = std::fopen(opt.emit_policy.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.emit_policy.c_str());
            return 2;
        }
        std::fprintf(f, "%s\n", result.json().c_str());
        std::fclose(f);
    }

    bool ok = result.subset;
    std::string validation_json;
    if (opt.validate) {
        std::vector<Differential> checks = validate(opt);
        validation_json = ",\"validation\":[";
        for (std::size_t i = 0; i < checks.size(); ++i) {
            const Differential &d = checks[i];
            ok = ok && d.passed;
            if (i)
                validation_json += ",";
            validation_json += "{\"name\":\"";
            jsonEscape(validation_json, d.name);
            validation_json += "\",\"passed\":";
            validation_json += d.passed ? "true" : "false";
            validation_json += ",\"detail\":\"";
            jsonEscape(validation_json, d.detail);
            validation_json += "\"}";
            if (!opt.json)
                std::printf("%-9s %s%s%s\n",
                            d.passed ? "IDENTICAL" : "DIVERGED",
                            d.name.c_str(),
                            d.detail.empty() ? "" : ": ",
                            d.detail.c_str());
        }
        validation_json += "]";
    }

    if (opt.json) {
        std::string out = result.json();
        if (!validation_json.empty()) {
            // Splice the validation array into the result object.
            out.insert(out.size() - 1, validation_json);
        }
        std::printf("%s\n", out.c_str());
    } else {
        std::printf("%s", result.text().c_str());
    }
    return ok ? 0 : 1;
}
