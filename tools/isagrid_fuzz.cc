/**
 * @file
 * isagrid-fuzz — deterministic coverage-guided differential fuzzing
 * of the five-tool trust stack.
 *
 * Seeds the corpus from the stock mini-kernels and the attack
 * scenarios, mutates guest images and privilege tables with
 * structure-aware mutators, and runs every artifact through the
 * simulator (both execution engines), isagrid-verify, isagrid-xscan,
 * isagrid-mc (+ counterexample replay), isagrid-minpriv and
 * isagrid-contract, asserting the cross-tool agreement invariants
 * (docs/fuzzing.md). Any disagreement is, by construction, a bug in
 * one of the tools.
 *
 *   isagrid-fuzz [options]
 *     --arch=riscv|x86|both     target prototype(s)     [riscv]
 *     --seed=N                  campaign RNG seed       [1]
 *     --max-iters=N             mutated cases to run    [100]
 *     --max-seconds=N           wall-clock budget, 0 = none;
 *                               trades away byte-determinism
 *     --jobs=N                  worker threads          [1]
 *     --filter=SUBSTR           restrict seed names
 *     --corpus=DIR              load extra seed artifacts (*.art)
 *     --save=DIR                write corpus + finding artifacts
 *     --contract-stride=N       contract oracle every Nth case,
 *                               0 = never               [16]
 *     --seeds-only              validate seeds, no mutation
 *     --list-seeds              print seed names and exit
 *     --replay=FILE             run all oracles on one artifact
 *     --json                    machine-readable report
 *
 * Exit status: 0 when every oracle agreed on every case, 1 when at
 * least one cross-tool disagreement was found, 2 on usage errors.
 *
 * Examples:
 *   isagrid-fuzz --arch=both --seed=7 --max-iters=500 --jobs=4
 *   isagrid-fuzz --replay=tests/data/fuzz_corpus/mask_compose.art
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/fuzz.hh"
#include "sim/logging.hh"
#include "verify/report_common.hh"

using namespace isagrid;

namespace {

struct Options
{
    bool riscv = true;
    bool x86 = false;
    FuzzOptions fuzz;
    bool list_seeds = false;
    bool json = false;
    std::string save_dir;
    std::string replay;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--arch=riscv|x86|both] [--seed=N]\n"
                 "  [--max-iters=N] [--max-seconds=N] [--jobs=N]\n"
                 "  [--filter=SUBSTR] [--corpus=DIR] [--save=DIR]\n"
                 "  [--contract-stride=N] [--seeds-only] "
                 "[--list-seeds]\n"
                 "  [--replay=FILE] [--json]\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (eatOption(argv[i], "--arch", v)) {
            if (v == "riscv") {
                opt.riscv = true;
                opt.x86 = false;
            } else if (v == "x86") {
                opt.riscv = false;
                opt.x86 = true;
            } else if (v == "both") {
                opt.riscv = true;
                opt.x86 = true;
            } else {
                usage(argv[0]);
            }
        } else if (eatOption(argv[i], "--seed", v)) {
            opt.fuzz.seed = std::stoull(v);
        } else if (eatOption(argv[i], "--max-iters", v)) {
            opt.fuzz.max_iters = std::stoull(v);
        } else if (eatOption(argv[i], "--max-seconds", v)) {
            opt.fuzz.max_seconds = std::stoull(v);
        } else if (eatOption(argv[i], "--jobs", v)) {
            opt.fuzz.jobs = static_cast<unsigned>(std::stoul(v));
            if (opt.fuzz.jobs == 0)
                usage(argv[0]);
        } else if (eatOption(argv[i], "--filter", v)) {
            opt.fuzz.filter = v;
        } else if (eatOption(argv[i], "--corpus", v)) {
            opt.fuzz.corpus_dir = v;
        } else if (eatOption(argv[i], "--save", v)) {
            opt.save_dir = v;
        } else if (eatOption(argv[i], "--contract-stride", v)) {
            opt.fuzz.contract_stride = std::stoull(v);
        } else if (std::strcmp(argv[i], "--seeds-only") == 0) {
            opt.fuzz.seeds_only = true;
        } else if (std::strcmp(argv[i], "--list-seeds") == 0) {
            opt.list_seeds = true;
        } else if (eatOption(argv[i], "--replay", v)) {
            opt.replay = v;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opt.json = true;
        } else {
            usage(argv[0]);
        }
    }
    return opt;
}

std::string
sanitize(const std::string &name)
{
    std::string out;
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

void
saveArtifacts(const FuzzResult &result, const std::string &dir)
{
    std::filesystem::create_directories(dir);
    char buf[64];
    for (std::size_t i = 0; i < result.corpus.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "corpus-%04zu-", i);
        std::string path = dir + "/" + buf +
                           sanitize(result.corpus[i].name) + ".art";
        std::ofstream out(path);
        if (!out)
            fatal("cannot write %s", path.c_str());
        out << result.corpus[i].serialize();
    }
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "finding-%02zu-", i);
        std::string path =
            dir + "/" + buf +
            sanitize(result.findings[i].invariant) + ".art";
        std::ofstream out(path);
        if (!out)
            fatal("cannot write %s", path.c_str());
        out << result.findings[i].artifact.serialize();
    }
}

/** Run every oracle (contract included) over one saved artifact. */
int
replayArtifact(const Options &opt)
{
    std::ifstream in(opt.replay);
    if (!in)
        fatal("cannot read %s", opt.replay.c_str());
    std::stringstream buf;
    buf << in.rdbuf();
    FuzzArtifact artifact;
    std::string error;
    if (!FuzzArtifact::parse(buf.str(), artifact, error))
        fatal("%s: %s", opt.replay.c_str(), error.c_str());

    OracleOptions oracle = opt.fuzz.oracle;
    oracle.run_contract = true;
    OracleOutcome outcome = runOracles(artifact, oracle);
    if (opt.json) {
        std::string out = "{\"tool\":\"isagrid-fuzz\",\"replay\":\"";
        jsonEscape(out, artifact.name);
        out += "\",\"coverage\":\"";
        jsonEscape(out, outcome.coverageKey());
        out += "\",";
        appendSummaryObject(
            out, {{"disagreements", outcome.disagreements.size()}});
        out += ",\"disagreements\":[";
        bool first = true;
        for (const Disagreement &d : outcome.disagreements) {
            if (!first)
                out += ',';
            first = false;
            out += "{\"invariant\":\"";
            jsonEscape(out, d.invariant);
            out += "\",\"detail\":\"";
            jsonEscape(out, d.detail);
            out += "\"}";
        }
        out += "]}";
        std::printf("%s\n", out.c_str());
    } else {
        for (const Disagreement &d : outcome.disagreements) {
            std::printf("DISAGREEMENT %s: %s\n", d.invariant.c_str(),
                        d.detail.c_str());
        }
        std::printf("replay '%s': %zu disagreements, coverage %s\n",
                    artifact.name.c_str(),
                    outcome.disagreements.size(),
                    outcome.coverageKey().c_str());
    }
    return outcome.agree() ? 0 : 1;
}

int
runArch(const Options &opt, bool x86)
{
    FuzzOptions fuzz = opt.fuzz;
    fuzz.x86 = x86;
    FuzzResult result = runFuzz(fuzz);
    if (opt.json)
        std::printf("%s\n", result.json().c_str());
    else
        std::printf("%s", result.text().c_str());
    if (!opt.save_dir.empty()) {
        saveArtifacts(result,
                      opt.save_dir + (x86 ? "/x86" : "/riscv"));
    }
    return result.clean() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);

    if (opt.list_seeds) {
        if (opt.riscv) {
            for (const FuzzArtifact &a : builtinSeeds(false))
                std::printf("riscv/%s\n", a.name.c_str());
        }
        if (opt.x86) {
            for (const FuzzArtifact &a : builtinSeeds(true))
                std::printf("x86/%s\n", a.name.c_str());
        }
        return 0;
    }

    if (!opt.replay.empty())
        return replayArtifact(opt);

    int status = 0;
    if (opt.riscv)
        status |= runArch(opt, false);
    if (opt.x86)
        status |= runArch(opt, true);
    return status;
}
