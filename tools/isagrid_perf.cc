/**
 * @file
 * isagrid-perf — analyzer for `--metrics-out` JSON documents.
 *
 * Consumes the epoch-sampled metrics + profile JSON written by
 * isagrid-sim / isagrid_bench (see sim/metrics.hh) and renders:
 *
 *   isagrid-perf [options] METRICS.json
 *     --top=N             rows per hot table            [10]
 *     --flamegraph=FILE   re-emit collapsed stacks (FlameGraph
 *                         input; '-' for stdout)
 *     --prom=FILE         re-emit final totals, Prometheus
 *                         exposition ('-' for stdout)
 *     --validate          structural checks only (exit 1 on failure)
 *
 * The default report differences adjacent epochs into interval rates:
 * host MIPS (instructions per wall second), simulated IPC, the
 * decode-cache and block-engine chain/memo hit rates, per-domain
 * privilege-cache hit rates, gate and domain-switch rates and SMC
 * invalidations — the run's shape over time, not just its totals.
 *
 * --validate enforces the series' structural contract: a version-1
 * document, strictly increasing epoch instruction counts, a
 * non-decreasing wall clock, totals that match the last epoch, every
 * profile breakdown table summing back to the sample count, and
 * `samples * interval` covering the retired-instruction total to
 * within one sampling interval.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON reader (objects keep field order).
// ---------------------------------------------------------------------

struct Json
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<Json> items;
    std::vector<std::pair<std::string, Json>> fields;

    const Json *
    find(const std::string &key) const
    {
        for (const auto &[name, value] : fields)
            if (name == key)
                return &value;
        return nullptr;
    }

    double
    num(const std::string &key, double fallback = 0) const
    {
        const Json *v = find(key);
        return v && v->kind == Kind::Number ? v->number : fallback;
    }

    std::string
    text(const std::string &key) const
    {
        const Json *v = find(key);
        return v && v->kind == Kind::String ? v->str : "";
    }
};

class JsonParser
{
  public:
    JsonParser(const std::string &text) : text_(text) {}

    bool
    parse(Json &out, std::string &error)
    {
        bool ok = value(out);
        skipSpace();
        if (ok && pos_ != text_.size()) {
            fail("trailing data");
            ok = false;
        }
        if (!ok)
            error = error_;
        return ok;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    fail(const char *what)
    {
        if (error_.empty()) {
            error_ = std::string(what) + " at offset " +
                     std::to_string(pos_);
        }
        return false;
    }

    bool
    literal(const char *word, Json &out, Json::Kind kind, bool b)
    {
        std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return fail("bad literal");
        pos_ += len;
        out.kind = kind;
        out.boolean = b;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("bad escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > text_.size())
                      return fail("bad \\u escape");
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = text_[pos_++];
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code |= unsigned(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          code |= unsigned(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          code |= unsigned(h - 'A' + 10);
                      else
                          return fail("bad \\u escape");
                  }
                  // The documents we read are ASCII; keep non-ASCII
                  // escapes as replacement bytes rather than UTF-8.
                  out += code < 0x80 ? char(code) : '?';
                  break;
              }
              default:
                return fail("bad escape");
            }
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_; // closing quote
        return true;
    }

    bool
    value(Json &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end");
        char c = text_[pos_];
        if (c == 'n')
            return literal("null", out, Json::Kind::Null, false);
        if (c == 't')
            return literal("true", out, Json::Kind::Bool, true);
        if (c == 'f')
            return literal("false", out, Json::Kind::Bool, false);
        if (c == '"') {
            out.kind = Json::Kind::String;
            return string(out.str);
        }
        if (c == '[') {
            ++pos_;
            out.kind = Json::Kind::Array;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                Json item;
                if (!value(item))
                    return false;
                out.items.push_back(std::move(item));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '{') {
            ++pos_;
            out.kind = Json::Kind::Object;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipSpace();
                std::string key;
                if (!string(key))
                    return false;
                skipSpace();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                Json item;
                if (!value(item))
                    return false;
                out.fields.emplace_back(std::move(key),
                                        std::move(item));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        // Number.
        std::size_t start = pos_;
        if (text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("unexpected character");
        try {
            out.number = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            return fail("bad number");
        }
        out.kind = Json::Kind::Number;
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

// ---------------------------------------------------------------------
// Document model
// ---------------------------------------------------------------------

struct Options
{
    std::string input;
    std::string flamegraph_file;
    std::string prom_file;
    bool validate = false;
    unsigned top = 10;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--top=N] [--flamegraph=FILE] "
                 "[--prom=FILE] [--validate] METRICS.json\n",
                 argv0);
    std::exit(2);
}

/** An epoch's numeric values as a flat map (nulls skipped). */
std::map<std::string, double>
valuesOf(const Json &obj)
{
    std::map<std::string, double> out;
    for (const auto &[name, value] : obj.fields)
        if (value.kind == Json::Kind::Number)
            out[name] = value.number;
    return out;
}

double
lookup(const std::map<std::string, double> &values,
       const std::string &key)
{
    auto it = values.find(key);
    return it == values.end() ? 0.0 : it->second;
}

/** hits / (hits + misses) over the interval delta of two keys. */
double
intervalRate(const std::map<std::string, double> &cur,
             const std::map<std::string, double> &prev,
             const std::string &hit_key, const std::string &miss_key)
{
    double hits = lookup(cur, hit_key) - lookup(prev, hit_key);
    double misses = lookup(cur, miss_key) - lookup(prev, miss_key);
    double total = hits + misses;
    return total <= 0 ? 0.0 : hits / total;
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

void
printHotTable(const Json &profile, const char *array_key,
              const char *label_key, const char *title, unsigned top)
{
    const Json *rows = profile.find(array_key);
    if (!rows || rows->items.empty())
        return;
    std::vector<const Json *> sorted;
    for (const Json &row : rows->items)
        sorted.push_back(&row);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Json *a, const Json *b) {
                         return a->num("samples") > b->num("samples");
                     });
    double total = 0;
    for (const Json *row : sorted)
        total += row->num("samples");
    std::printf("\n%s:\n", title);
    for (unsigned i = 0; i < sorted.size() && i < top; ++i) {
        const Json *row = sorted[i];
        std::string label = row->text(label_key);
        if (label.empty()) {
            // Numeric key (the domains table).
            label = std::to_string(
                (long long)row->num(label_key));
        }
        std::string extra = row->text("region");
        std::printf("  %-28s %10lld samples (%5.2f%%)%s%s\n",
                    label.c_str(), (long long)row->num("samples"),
                    total ? 100.0 * row->num("samples") / total : 0.0,
                    extra.empty() ? "" : "  ", extra.c_str());
    }
}

void
report(const Json &doc, const Options &opt)
{
    const Json *epochs = doc.find("epochs");
    const Json *totals = doc.find("totals");
    const Json *profile = doc.find("profile");
    std::map<std::string, double> total_values =
        totals ? valuesOf(*totals) : std::map<std::string, double>{};

    std::printf("metrics interval : %lld instructions\n",
                (long long)doc.num("metrics_interval"));
    std::printf("profile interval : %lld instructions\n",
                (long long)doc.num("profile_interval"));
    std::printf("epochs           : %zu\n",
                epochs ? epochs->items.size() : 0);
    std::printf("instructions     : %.0f\n",
                lookup(total_values, "core.instructions"));
    std::printf("cycles           : %.0f\n",
                lookup(total_values, "core.cycles"));

    if (epochs && !epochs->items.empty()) {
        std::printf("\nepoch series (interval rates):\n");
        std::printf("  %5s %12s %8s %6s %6s %6s %6s %6s %8s\n", "ep",
                    "insts", "MIPS", "IPC", "dcach", "chain", "memo",
                    "pcu", "sw/ki");
        std::map<std::string, double> prev;
        double prev_insts = 0, prev_cycles = 0, prev_wall = 0;
        for (const Json &e : epochs->items) {
            const Json *vobj = e.find("values");
            std::map<std::string, double> values =
                vobj ? valuesOf(*vobj)
                     : std::map<std::string, double>{};
            double insts = e.num("instructions");
            double cycles = e.num("cycles");
            double wall = e.num("wall_seconds");
            double d_insts = insts - prev_insts;
            double d_cycles = cycles - prev_cycles;
            double d_wall = wall - prev_wall;
            double switches = lookup(values, "pcu.switches") -
                              lookup(prev, "pcu.switches");
            std::printf(
                "  %5lld %12.0f %8.2f %6.3f %6.3f %6.3f %6.3f "
                "%6.3f %8.2f\n",
                (long long)e.num("index"), insts,
                d_wall > 0 ? d_insts / d_wall / 1e6 : 0.0,
                d_cycles > 0 ? d_insts / d_cycles : 0.0,
                intervalRate(values, prev, "host.decode_cache.hits",
                             "host.decode_cache.misses"),
                intervalRate(values, prev, "host.block.chain_hits",
                             "host.block.chain_misses"),
                intervalRate(values, prev, "host.block.memo_hits",
                             "host.block.memo_fills"),
                intervalRate(values, prev, "pcu.inst_cache.hits",
                             "pcu.inst_cache.misses"),
                d_insts > 0 ? 1000.0 * switches / d_insts : 0.0);
            prev = std::move(values);
            prev_insts = insts;
            prev_cycles = cycles;
            prev_wall = wall;
        }
    }

    // Per-domain privilege-cache totals (dynamic key set).
    bool domain_header = false;
    for (const auto &[name, value] : total_values) {
        const std::string prefix = "pcu.domain.";
        if (name.rfind(prefix, 0) != 0 ||
            name.find(".cache_hit_rate") == std::string::npos)
            continue;
        if (!domain_header) {
            std::printf("\nper-domain privilege-cache hit rates:\n");
            domain_header = true;
        }
        std::string id = name.substr(
            prefix.size(), name.find('.', prefix.size()) -
                               prefix.size());
        std::printf("  domain %-6s %6.3f  (%.0f hits, %.0f misses)\n",
                    id.c_str(), value,
                    lookup(total_values,
                           prefix + id + ".cache_hits"),
                    lookup(total_values,
                           prefix + id + ".cache_misses"));
    }

    if (profile) {
        std::printf("\nprofile samples  : %lld (1 per %lld insts)\n",
                    (long long)profile->num("samples"),
                    (long long)profile->num("interval"));
        printHotTable(*profile, "regions", "region", "hot regions",
                      opt.top);
        printHotTable(*profile, "hot_pcs", "pc", "hot pcs", opt.top);
        printHotTable(*profile, "hot_blocks", "start",
                      "hot translated blocks", opt.top);
        printHotTable(*profile, "domains", "domain",
                      "samples by domain", opt.top);
    }
}

// ---------------------------------------------------------------------
// Re-exporters
// ---------------------------------------------------------------------

/** @p path as a writable stream; "-" selects stdout (like isagrid-trace). */
std::ostream *
openOut(const std::string &path, std::ofstream &file)
{
    if (path == "-")
        return &std::cout;
    file.open(path);
    if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return nullptr;
    }
    return &file;
}

int
writeFlamegraph(const Json &doc, const std::string &path)
{
    const Json *profile = doc.find("profile");
    const Json *stacks = profile ? profile->find("stacks") : nullptr;
    std::ofstream file;
    std::ostream *osp = openOut(path, file);
    if (!osp)
        return 2;
    std::ostream &os = *osp;
    if (stacks) {
        for (const Json &row : stacks->items) {
            os << row.text("stack") << ' '
               << (long long)row.num("samples") << '\n';
        }
    }
    return 0;
}

std::string
promName(const std::string &name)
{
    std::string out = "isagrid_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

/** Split a ".domain.<id>." key; same convention as sim/metrics.cc. */
bool
splitDomainKey(const std::string &name, std::string &base,
               std::string &id)
{
    const std::string marker = ".domain.";
    std::size_t at = name.find(marker);
    if (at == std::string::npos)
        return false;
    std::size_t digits = at + marker.size();
    std::size_t end = digits;
    while (end < name.size() && name[end] >= '0' && name[end] <= '9')
        ++end;
    if (end == digits || end >= name.size() || name[end] != '.')
        return false;
    base = name.substr(0, at) + name.substr(end);
    id = name.substr(digits, end - digits);
    return true;
}

int
writePrometheus(const Json &doc, const std::string &path)
{
    const Json *totals = doc.find("totals");
    std::ofstream file;
    std::ostream *osp = openOut(path, file);
    if (!osp)
        return 2;
    std::ostream &os = *osp;
    std::map<std::string,
             std::vector<std::pair<std::string, double>>>
        families;
    std::map<std::string, std::string> familySource;
    if (totals) {
        for (const auto &[name, value] : valuesOf(*totals)) {
            std::string base, id;
            if (splitDomainKey(name, base, id)) {
                families[promName(base)].emplace_back(id, value);
                familySource.emplace(promName(base), base);
            } else {
                families[promName(name)].emplace_back("", value);
                familySource.emplace(promName(name), name);
            }
        }
    }
    for (const auto &[family, series] : families) {
        const std::string &source = familySource[family];
        bool gauge = source.find("rate") != std::string::npos;
        os << "# HELP " << family << ' ' << source << '\n';
        os << "# TYPE " << family << ' '
           << (gauge ? "gauge" : "counter") << '\n';
        for (const auto &[label, value] : series) {
            os << family;
            if (!label.empty())
                os << "{domain=\"" << label << "\"}";
            char buf[40];
            if (value == std::floor(value) &&
                std::fabs(value) < 9.0e15)
                std::snprintf(buf, sizeof buf, " %lld",
                              (long long)value);
            else
                std::snprintf(buf, sizeof buf, " %.10g", value);
            os << buf << '\n';
        }
    }
    const Json *profile = doc.find("profile");
    const Json *domains = profile ? profile->find("domains") : nullptr;
    os << "# HELP isagrid_profile_samples guest pc samples taken\n"
          "# TYPE isagrid_profile_samples counter\n";
    if (domains && !domains->items.empty()) {
        for (const Json &row : domains->items) {
            os << "isagrid_profile_samples{domain=\""
               << (long long)row.num("domain") << "\"} "
               << (long long)row.num("samples") << '\n';
        }
    } else {
        os << "isagrid_profile_samples "
           << (profile ? (long long)profile->num("samples") : 0)
           << '\n';
    }
    return 0;
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

int
validate(const Json &doc)
{
    std::vector<std::string> problems;
    auto check = [&](bool ok, const std::string &what) {
        if (!ok)
            problems.push_back(what);
    };

    check(doc.num("version") == 1, "unknown document version");
    const Json *epochs = doc.find("epochs");
    check(epochs && epochs->kind == Json::Kind::Array,
          "missing epochs array");
    double last_insts = -1, last_wall = -1;
    if (epochs) {
        for (const Json &e : epochs->items) {
            double insts = e.num("instructions");
            double wall = e.num("wall_seconds");
            check(insts > last_insts,
                  "epoch instruction counts not strictly increasing");
            check(wall >= last_wall, "wall clock went backwards");
            check(e.find("values") != nullptr,
                  "epoch without values");
            last_insts = insts;
            last_wall = wall;
        }
    }

    const Json *totals = doc.find("totals");
    check(totals != nullptr, "missing totals");
    double retired = 0;
    if (totals) {
        retired = totals->num("core.instructions");
        if (epochs && !epochs->items.empty()) {
            check(retired == last_insts,
                  "totals do not match the last epoch");
        }
    }

    const Json *profile = doc.find("profile");
    check(profile != nullptr, "missing profile");
    if (profile) {
        double samples = profile->num("samples");
        double interval = profile->num("interval");
        auto table_sum = [&](const char *key) {
            const Json *rows = profile->find(key);
            double sum = 0;
            if (rows)
                for (const Json &row : rows->items)
                    sum += row.num("samples");
            return sum;
        };
        check(table_sum("hot_pcs") == samples,
              "hot_pcs do not sum to the sample count");
        check(table_sum("domains") == samples,
              "domains do not sum to the sample count");
        check(table_sum("stacks") == samples,
              "stacks do not sum to the sample count");
        check(table_sum("regions") == samples,
              "regions do not sum to the sample count");
        if (interval > 0 && retired > 0) {
            // Each sample stands for `interval` retired instructions.
            double attributed = samples * interval;
            check(attributed <= retired &&
                      retired - attributed <= interval,
                  "samples * interval misses the retired total by "
                  "more than one interval");
        }
    }

    if (problems.empty()) {
        std::printf("metrics document OK\n");
        return 0;
    }
    for (const std::string &p : problems)
        std::fprintf(stderr, "INVALID: %s\n", p.c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        std::string v;
        auto eat = [&](const char *key) {
            std::size_t len = std::strlen(key);
            if (std::strncmp(arg, key, len) == 0 && arg[len] == '=') {
                v = arg + len + 1;
                return true;
            }
            return false;
        };
        if (eat("--top")) {
            opt.top = unsigned(std::stoul(v));
        } else if (eat("--flamegraph")) {
            opt.flamegraph_file = v;
        } else if (eat("--prom")) {
            opt.prom_file = v;
        } else if (std::strcmp(arg, "--validate") == 0) {
            opt.validate = true;
        } else if (arg[0] == '-') {
            usage(argv[0]);
        } else if (opt.input.empty()) {
            opt.input = arg;
        } else {
            usage(argv[0]);
        }
    }
    if (opt.input.empty())
        usage(argv[0]);

    std::ifstream in(opt.input);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", opt.input.c_str());
        return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    Json doc;
    std::string error;
    if (!JsonParser(text).parse(doc, error) ||
        doc.kind != Json::Kind::Object) {
        std::fprintf(stderr, "%s: not a metrics document (%s)\n",
                     opt.input.c_str(),
                     error.empty() ? "not an object" : error.c_str());
        return 2;
    }

    if (opt.validate)
        return validate(doc);

    int rc = 0;
    if (!opt.flamegraph_file.empty())
        rc = writeFlamegraph(doc, opt.flamegraph_file);
    if (rc == 0 && !opt.prom_file.empty())
        rc = writePrometheus(doc, opt.prom_file);
    if (rc == 0 && opt.flamegraph_file.empty() && opt.prom_file.empty())
        report(doc, opt);
    return rc;
}
