/**
 * @file
 * isagrid-trace — offline analyzer for `.isatrace` event files
 * (written by `isagrid-sim --trace-events` or any BinaryTraceSink).
 *
 *   isagrid-trace [options] FILE.isatrace
 *     --validate              structural validation only (monotonic
 *                             cycles, balanced trusted-stack traffic,
 *                             domain continuity); exit 1 on problems
 *     --export-perfetto=FILE  write Chrome trace-event JSON loadable
 *                             in Perfetto / chrome://tracing ('-' for
 *                             stdout)
 *     --top=N                 rows in the hotspot tables   [10]
 *     --timeline=N            rows in the fault timeline   [20]
 *
 * The default report answers the questions the paper's evaluation
 * asks of a decomposed system: which domain held the core and for how
 * long (residency), what domain switches cost (stall-cycle
 * histograms for hccall/hccalls and hcrets), which gates and CSRs are
 * hot, and where the privilege faults cluster in time.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "isa/inst.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

using namespace isagrid;

namespace {

struct Options
{
    std::string input;
    std::string perfetto_file;
    bool validate = false;
    unsigned top = 10;
    unsigned timeline = 20;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--validate] [--export-perfetto=FILE] "
                 "[--top=N] [--timeline=N] FILE.isatrace\n",
                 argv0);
    std::exit(2);
}

bool
eat(const char *arg, const char *key, std::string &value)
{
    std::size_t len = std::strlen(key);
    if (std::strncmp(arg, key, len) == 0 && arg[len] == '=') {
        value = arg + len + 1;
        return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (eat(argv[i], "--export-perfetto", v)) {
            opt.perfetto_file = v;
        } else if (eat(argv[i], "--top", v)) {
            opt.top = unsigned(std::stoul(v));
        } else if (eat(argv[i], "--timeline", v)) {
            opt.timeline = unsigned(std::stoul(v));
        } else if (std::strcmp(argv[i], "--validate") == 0) {
            opt.validate = true;
        } else if (argv[i][0] == '-') {
            usage(argv[0]);
        } else if (opt.input.empty()) {
            opt.input = argv[i];
        } else {
            usage(argv[0]);
        }
    }
    if (opt.input.empty())
        usage(argv[0]);
    return opt;
}

/** faultName over a raw payload word (exportPerfetto adapter). */
const char *
faultLabel(std::uint64_t fault)
{
    if (fault > std::uint64_t(FaultType::TimerInterrupt))
        return nullptr;
    return faultName(static_cast<FaultType>(fault));
}

/** Render one Histogram as an ASCII row chart. */
void
printHistogram(const char *title, const Histogram &h)
{
    std::printf("%s: %llu samples", title,
                (unsigned long long)h.count());
    if (h.count() == 0) {
        std::printf("\n");
        return;
    }
    std::printf(", min %llu, mean %.1f, max %llu, stddev %.1f\n",
                (unsigned long long)h.min(), h.mean(),
                (unsigned long long)h.max(), h.stddev());
    std::uint64_t peak = 1;
    for (unsigned i = 0; i < h.numBuckets(); ++i)
        peak = std::max(peak, h.bucketCount(i));
    for (unsigned i = 0; i < h.numBuckets(); ++i) {
        if (h.bucketCount(i) == 0)
            continue;
        char range[48];
        if (i + 1 == h.numBuckets()) {
            std::snprintf(range, sizeof range, "[%llu, inf)",
                          (unsigned long long)h.bucketLow(i));
        } else {
            std::snprintf(range, sizeof range, "[%llu, %llu]",
                          (unsigned long long)h.bucketLow(i),
                          (unsigned long long)h.bucketHigh(i));
        }
        unsigned bar = unsigned(40 * h.bucketCount(i) / peak);
        std::printf("    %-16s %10llu %s\n", range,
                    (unsigned long long)h.bucketCount(i),
                    std::string(bar, '#').c_str());
    }
}

/** Top-N rows of a counter map, largest first. */
template <typename Key>
std::vector<std::pair<Key, std::uint64_t>>
topN(const std::map<Key, std::uint64_t> &counts, unsigned n)
{
    std::vector<std::pair<Key, std::uint64_t>> rows(counts.begin(),
                                                    counts.end());
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    if (rows.size() > n)
        rows.resize(n);
    return rows;
}

void
report(const TraceFile &trace, const Options &opt)
{
    // Domain names announced in the stream.
    std::map<std::uint32_t, std::string> names;
    for (const TraceEvent &e : trace.events) {
        if (e.kind == std::uint8_t(TraceKind::DomainName))
            names[std::uint32_t(e.a)] = unpackTraceName(e.b);
    }
    auto domainLabel = [&](std::uint32_t domain) {
        auto it = names.find(domain);
        std::string label = "d" + std::to_string(domain);
        if (it != names.end() && !it->second.empty())
            label += " (" + it->second + ")";
        return label;
    };

    // One pass accumulates everything: per-kind counts, per-domain
    // residency (cycle deltas between consecutive events on a core,
    // attributed to the domain the core was in), switch-latency
    // histograms, gate/CSR hotspots, and the fault timeline.
    std::uint64_t kind_counts[numTraceKinds] = {};
    struct CoreCursor
    {
        bool seen = false;
        Cycle last_cycle = 0;
        std::uint32_t domain = 0;
    };
    std::map<std::uint8_t, CoreCursor> cursors;
    struct Residency
    {
        Cycle cycles = 0;
        std::uint64_t switches_in = 0;
    };
    std::map<std::uint32_t, Residency> residency;
    Histogram call_latency{12}, ret_latency{12};
    std::map<std::uint64_t, std::uint64_t> gate_calls;
    std::map<std::uint64_t, std::uint64_t> csr_traffic;
    std::map<std::uint64_t, std::uint64_t> fault_counts;
    std::vector<const TraceEvent *> faults;
    struct BlockTotals
    {
        std::uint64_t enters = 0;
        std::uint64_t chained = 0;
        std::uint64_t insts = 0; //!< ops retired from blocks
        std::uint64_t invalidations = 0;
        std::uint64_t retranslated = 0;
        std::uint64_t blacklisted = 0;
    } blocks;
    std::map<std::uint32_t, std::uint64_t> block_domain_insts;
    std::map<std::uint64_t, std::uint64_t> block_invalidate_pcs;
    // Drop markers carry cumulative per-buffer counts; the last one
    // per core is the total that buffer lost.
    std::map<std::uint8_t, std::uint64_t> drops_by_core;

    for (const TraceEvent &e : trace.events) {
        if (e.kind >= numTraceKinds)
            continue;
        ++kind_counts[e.kind];
        auto kind = static_cast<TraceKind>(e.kind);

        CoreCursor &cur = cursors[e.core];
        if (cur.seen && e.cycle > cur.last_cycle)
            residency[cur.domain].cycles += e.cycle - cur.last_cycle;
        cur.seen = true;
        cur.last_cycle = e.cycle;
        if (kind != TraceKind::DomainName)
            cur.domain = e.domain;

        switch (kind) {
          case TraceKind::DomainSwitch:
            ++residency[std::uint32_t(e.a)].switches_in;
            break;
          case TraceKind::GateCall:
            if (e.flags & 1) {
                call_latency.sample(e.b);
                ++gate_calls[e.a];
            }
            break;
          case TraceKind::GateRet:
            if (e.flags & 1)
                ret_latency.sample(e.b);
            break;
          case TraceKind::CsrReadCheck:
          case TraceKind::CsrWriteCheck:
          case TraceKind::CsrCommit:
            ++csr_traffic[e.a];
            break;
          case TraceKind::Trap:
            ++fault_counts[e.a];
            faults.push_back(&e);
            break;
          case TraceKind::BlockEnter:
            ++blocks.enters;
            blocks.chained += e.flags & 1;
            blocks.insts += e.b;
            block_domain_insts[e.domain] += e.b;
            break;
          case TraceKind::BlockInvalidate:
            ++blocks.invalidations;
            blocks.retranslated += (e.flags & 1) != 0;
            blocks.blacklisted += (e.flags & 2) != 0;
            ++block_invalidate_pcs[e.a];
            break;
          case TraceKind::Drops:
            drops_by_core[e.core] =
                std::max(drops_by_core[e.core], e.a);
            break;
          default:
            break;
        }
    }

    std::printf("events          : %zu (%u cores)\n",
                trace.events.size(), unsigned(cursors.size()));
    if (!drops_by_core.empty()) {
        std::uint64_t dropped = 0;
        std::uint64_t markers = kind_counts[std::size_t(
            TraceKind::Drops)];
        for (const auto &[core, count] : drops_by_core)
            dropped += count;
        std::printf("dropped events  : %llu lost to sink-less ring "
                    "overflow (%llu drop markers)\n",
                    (unsigned long long)dropped,
                    (unsigned long long)markers);
    }
    std::printf("by kind:\n");
    for (unsigned k = 0; k < numTraceKinds; ++k) {
        if (kind_counts[k]) {
            std::printf("  %-16s %10llu\n",
                        traceKindName(static_cast<TraceKind>(k)),
                        (unsigned long long)kind_counts[k]);
        }
    }

    if (!residency.empty()) {
        Cycle total = 0;
        for (const auto &[domain, r] : residency)
            total += r.cycles;
        std::printf("\nper-domain residency:\n");
        for (const auto &[domain, r] : residency) {
            std::printf("  %-16s %12llu cycles (%5.2f%%) "
                        "%8llu switches in\n",
                        domainLabel(domain).c_str(),
                        (unsigned long long)r.cycles,
                        total ? 100.0 * double(r.cycles) / double(total)
                              : 0.0,
                        (unsigned long long)r.switches_in);
        }
    }

    if (blocks.enters || blocks.invalidations) {
        // Requires BlockEnter in the capture filter
        // (--trace-filter=...,block); BlockInvalidate alone still
        // yields the invalidation summary below.
        std::printf("\ntranslated-block residency:\n");
        std::printf("  block entries    : %10llu (%.1f%% chained)\n",
                    (unsigned long long)blocks.enters,
                    blocks.enters ? 100.0 * double(blocks.chained) /
                                        double(blocks.enters)
                                  : 0.0);
        std::printf("  translated insts : %10llu\n",
                    (unsigned long long)blocks.insts);
        for (const auto &[domain, insts] : block_domain_insts) {
            std::printf("    %-16s %12llu insts (%5.2f%%)\n",
                        domainLabel(domain).c_str(),
                        (unsigned long long)insts,
                        blocks.insts ? 100.0 * double(insts) /
                                           double(blocks.insts)
                                     : 0.0);
        }
        std::printf("  invalidations    : %10llu "
                    "(retranslated %llu, blacklisted %llu)\n",
                    (unsigned long long)blocks.invalidations,
                    (unsigned long long)blocks.retranslated,
                    (unsigned long long)blocks.blacklisted);
        if (!block_invalidate_pcs.empty()) {
            std::printf("  top invalidated blocks:\n");
            for (const auto &[pc, count] :
                 topN(block_invalidate_pcs, opt.top)) {
                std::printf("    pc %#-12llx %10llu invalidations\n",
                            (unsigned long long)pc,
                            (unsigned long long)count);
            }
        }
    }

    std::printf("\n");
    printHistogram("gate-call stall cycles", call_latency);
    printHistogram("gate-ret stall cycles", ret_latency);

    if (!gate_calls.empty()) {
        std::printf("\ntop gates (successful hccall/hccalls):\n");
        for (const auto &[gate, count] : topN(gate_calls, opt.top)) {
            std::printf("  gate %-6llu %10llu calls\n",
                        (unsigned long long)gate,
                        (unsigned long long)count);
        }
    }
    if (!csr_traffic.empty()) {
        std::printf("\ntop CSRs (checks + commits):\n");
        for (const auto &[csr, count] : topN(csr_traffic, opt.top)) {
            std::printf("  csr %#-8llx %10llu accesses\n",
                        (unsigned long long)csr,
                        (unsigned long long)count);
        }
    }

    if (!faults.empty()) {
        std::printf("\nfaults by type:\n");
        for (const auto &[fault, count] : fault_counts) {
            const char *label = faultLabel(fault);
            std::printf("  %-24s %10llu\n",
                        label ? label
                              : ("fault-" + std::to_string(fault))
                                    .c_str(),
                        (unsigned long long)count);
        }
        std::printf("\nfault timeline (first %u of %zu):\n",
                    std::min<unsigned>(opt.timeline,
                                       unsigned(faults.size())),
                    faults.size());
        for (unsigned i = 0;
             i < faults.size() && i < opt.timeline; ++i) {
            const TraceEvent &e = *faults[i];
            const char *label = faultLabel(e.a);
            std::printf("  cycle %-12llu core %-3u %-16s %-24s "
                        "pc %#llx\n",
                        (unsigned long long)e.cycle, unsigned(e.core),
                        domainLabel(e.domain).c_str(),
                        label ? label : "?",
                        (unsigned long long)e.b);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);

    TraceFile trace;
    std::string error;
    if (!readTraceFile(opt.input, trace, error))
        fatal("%s: %s", opt.input.c_str(), error.c_str());

    if (opt.validate) {
        TraceValidation v = validateTrace(trace.events);
        std::printf("%s: %llu events, schema v%u: %s\n",
                    opt.input.c_str(), (unsigned long long)v.events,
                    trace.header.version, v.ok ? "OK" : "INVALID");
        for (const std::string &p : v.problems)
            std::printf("  %s\n", p.c_str());
        return v.ok ? 0 : 1;
    }

    if (!opt.perfetto_file.empty()) {
        if (opt.perfetto_file == "-") {
            exportPerfetto(trace, std::cout, faultLabel);
        } else {
            std::ofstream os(opt.perfetto_file);
            if (!os)
                fatal("cannot open %s", opt.perfetto_file.c_str());
            exportPerfetto(trace, os, faultLabel);
            std::printf("wrote %s (%zu events)\n",
                        opt.perfetto_file.c_str(),
                        trace.events.size());
        }
        return 0;
    }

    report(trace, opt);
    return 0;
}
