/**
 * @file
 * Parallel benchmark runner over the scenario registry
 * (bench/bench_common.hh). Every scenario is self-contained (builds
 * its own machines), so a `--jobs N` thread pool runs them
 * concurrently; each scenario is timed with warmup + repeated runs
 * and the median host wall time is reported. Results are written as
 * one `BENCH_<group>.json` per scenario group, making the perf
 * trajectory of the simulator machine-readable.
 *
 * The simulator is deterministic: guest cycles and instructions are
 * identical across repeats, only host wall time varies. With
 * `--compare-decode-cache` each scenario is additionally timed with
 * the decoded-instruction cache disabled and the speedup recorded;
 * `--compare-engine` runs the full three-way ablation (plain
 * interpreter / decode cache / block-translation engine). Compared
 * configurations are timed *interleaved* — one run of each per
 * repeat, round-robin — so slow drifts in host load bias every
 * configuration equally instead of whichever happened to run last.
 * Config-vs-config ratios use each configuration's *fastest* repeat
 * (Timing::best_seconds): contention on a deterministic workload only
 * adds time, so the minimum is the noise-robust estimate.
 *
 * With `--metrics-out DIR` every single-machine scenario gets one
 * extra *untimed* run with the performance monitor attached, writing
 * `DIR/<group>_<name>.metrics.json` (the sim/metrics.hh document that
 * tools/isagrid-perf consumes). After the group files are written, an
 * informational delta report compares each scenario against the
 * committed `BENCH_<group>.json` baseline: host-MIPS drift (expected
 * to move with the host) and guest-cycle totals (deterministic — any
 * change means the modeled behavior changed, not the machine load).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

#ifndef BENCH_BASELINE_DIR
#define BENCH_BASELINE_DIR "."
#endif

struct Options
{
    unsigned jobs = std::max(1u, std::thread::hardware_concurrency());
    unsigned repeat = 3;
    unsigned warmup = 1;
    std::string filter;
    std::string out_dir = ".";
    std::string metrics_out; //!< dir for per-scenario metrics JSON
    std::string baseline_dir = BENCH_BASELINE_DIR;
    bool compare_decode_cache = false;
    bool compare_engine = false;
    bool list_only = false;
    double min_mips = 0.0;
};

struct Timing
{
    ScenarioResult result;
    double median_seconds = 0.0;
    /**
     * Fastest repeat. Config-vs-config ratios are computed from the
     * minima, not the medians: the workloads are deterministic and
     * single-threaded, so host contention only ever *adds* time, and
     * the minimum is the estimate least distorted by a loaded or
     * frequency-scaled machine.
     */
    double best_seconds = 0.0;
};

struct Measured
{
    const Scenario *scenario = nullptr;
    Timing on;            //!< decode cache at its default size
    Timing off;           //!< plain interpreter (decode cache off)
    Timing block;         //!< block-translation engine on
    bool compared = false;        //!< `off` valid (decode-cache mode)
    bool engine_compared = false; //!< `off` and `block` valid
    std::string metrics_file;     //!< written by the untimed metrics run
};

double
median(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    std::size_t n = samples.size();
    return n % 2 ? samples[n / 2]
                 : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

/**
 * Warmup + repeat timed runs of one scenario under each configuration
 * in @p configs, interleaved round-robin (see the file comment).
 */
std::vector<Timing>
timeScenario(const Scenario &s, const std::vector<ScenarioOptions> &configs,
             unsigned warmup, unsigned repeat)
{
    for (unsigned i = 0; i < warmup; ++i)
        for (const ScenarioOptions &cfg : configs)
            s.run(cfg);
    std::vector<Timing> timings(configs.size());
    std::vector<std::vector<double>> walls(configs.size());
    for (unsigned i = 0; i < repeat; ++i) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
            auto t0 = std::chrono::steady_clock::now();
            timings[c].result = s.run(configs[c]);
            auto t1 = std::chrono::steady_clock::now();
            walls[c].push_back(
                std::chrono::duration<double>(t1 - t0).count());
        }
    }
    for (std::size_t c = 0; c < configs.size(); ++c) {
        timings[c].best_seconds =
            *std::min_element(walls[c].begin(), walls[c].end());
        timings[c].median_seconds = median(std::move(walls[c]));
    }
    return timings;
}

double
mips(const Timing &t)
{
    return t.median_seconds > 0.0
               ? t.result.guest_instructions / t.median_seconds / 1e6
               : 0.0;
}

void
writeGroupJson(const std::string &path, const std::string &group,
               const Options &opts,
               const std::vector<const Measured *> &rows)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot write %s", path.c_str());
    char buf[256];
    os << "{\n";
    os << "  \"group\": \"" << group << "\",\n";
    os << "  \"generated_by\": \"isagrid_bench\",\n";
    os << "  \"jobs\": " << opts.jobs << ",\n";
    os << "  \"warmup\": " << opts.warmup << ",\n";
    os << "  \"repeat\": " << opts.repeat << ",\n";
    os << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Measured &m = *rows[i];
        os << "    {\n";
        os << "      \"name\": \"" << m.scenario->name << "\",\n";
        os << "      \"guest_cycles\": " << m.on.result.guest_cycles
           << ",\n";
        os << "      \"guest_instructions\": "
           << m.on.result.guest_instructions << ",\n";
        std::snprintf(buf, sizeof buf, "%.6f", m.on.median_seconds);
        os << "      \"host_wall_seconds\": " << buf << ",\n";
        std::snprintf(buf, sizeof buf, "%.0f", mips(m.on) * 1e6);
        os << "      \"insts_per_second\": " << buf;
        if (m.compared) {
            os << ",\n      \"decode_cache_compare\": {\n";
            std::snprintf(buf, sizeof buf, "%.6f",
                          m.off.best_seconds);
            os << "        \"off_wall_seconds\": " << buf << ",\n";
            double speedup = m.on.best_seconds > 0.0
                                 ? m.off.best_seconds /
                                       m.on.best_seconds
                                 : 0.0;
            std::snprintf(buf, sizeof buf, "%.3f", speedup);
            os << "        \"speedup\": " << buf << "\n";
            os << "      }";
        }
        if (m.engine_compared) {
            auto ratio = [](double base, double other) {
                return other > 0.0 ? base / other : 0.0;
            };
            os << ",\n      \"engine_compare\": {\n";
            std::snprintf(buf, sizeof buf, "%.6f",
                          m.off.best_seconds);
            os << "        \"interpret_wall_seconds\": " << buf
               << ",\n";
            std::snprintf(buf, sizeof buf, "%.6f",
                          m.block.best_seconds);
            os << "        \"block_wall_seconds\": " << buf << ",\n";
            std::snprintf(buf, sizeof buf, "%.3f",
                          ratio(m.off.best_seconds,
                                m.block.best_seconds));
            os << "        \"block_vs_interpret\": " << buf << ",\n";
            std::snprintf(buf, sizeof buf, "%.3f",
                          ratio(m.on.best_seconds,
                                m.block.best_seconds));
            os << "        \"block_vs_decode_cache\": " << buf << "\n";
            os << "      }";
        }
        os << "\n    }" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

/**
 * `"name": "<name>" ... "<field>": <number>` out of a committed
 * BENCH_<group>.json, by plain text scan (same idiom as the overhead
 * benches — the files are machine-written, so no parser needed).
 */
bool
scanScenarioField(const std::string &text, const std::string &name,
                  const std::string &field, double &out)
{
    std::size_t at = text.find("\"name\": \"" + name + "\"");
    if (at == std::string::npos)
        return false;
    std::string key = "\"" + field + "\":";
    std::size_t k = text.find(key, at);
    if (k == std::string::npos)
        return false;
    out = std::strtod(text.c_str() + k + key.size(), nullptr);
    return true;
}

/**
 * Informational drift report against the committed BENCH_<group>.json
 * files. Host MIPS moves with the machine the bench ran on; guest
 * cycles are deterministic, so a changed total is always a modeled-
 * behavior change and gets flagged loudly. Never affects exit status:
 * the committed numbers come from a different host.
 */
void
reportBaselineDeltas(const Options &opts,
                     const std::vector<std::string> &groups,
                     const std::vector<Measured> &measured)
{
    for (const auto &g : groups) {
        std::string path = opts.baseline_dir + "/BENCH_" + g + ".json";
        std::ifstream is(path);
        if (!is) {
            std::printf("no committed baseline %s; skipping delta "
                        "report\n", path.c_str());
            continue;
        }
        std::stringstream ss;
        ss << is.rdbuf();
        std::string text = ss.str();
        std::printf("delta vs committed %s (informational):\n",
                    path.c_str());
        for (const auto &m : measured) {
            if (m.scenario->group != g)
                continue;
            double base_ips = 0, base_cycles = 0;
            if (!scanScenarioField(text, m.scenario->name,
                                   "insts_per_second", base_ips) ||
                !scanScenarioField(text, m.scenario->name,
                                   "guest_cycles", base_cycles)) {
                std::printf("  %-28s not in committed baseline\n",
                            m.scenario->name.c_str());
                continue;
            }
            double now_mips = mips(m.on);
            double host_delta =
                base_ips > 0 ? 100.0 * (now_mips * 1e6 / base_ips - 1.0)
                             : 0.0;
            auto cycles = double(m.on.result.guest_cycles);
            std::printf("  %-28s host %6.1f -> %6.1f MIPS (%+.1f%%)  "
                        "guest cycles %s\n",
                        m.scenario->name.c_str(), base_ips / 1e6,
                        now_mips, host_delta,
                        cycles == base_cycles
                            ? "match"
                            : "CHANGED — modeled behavior differs");
            if (cycles != base_cycles) {
                std::printf("    committed %.0f, measured %llu\n",
                            base_cycles,
                            (unsigned long long)
                                m.on.result.guest_cycles);
            }
        }
    }
}

void
usage()
{
    std::printf(
        "usage: isagrid_bench [options]\n"
        "  --jobs N              worker threads (default: cores)\n"
        "  --repeat R            timed runs per scenario (default 3)\n"
        "  --warmup W            untimed runs per scenario (default 1)\n"
        "  --filter SUBSTR       run scenarios whose group or name\n"
        "                        contains SUBSTR\n"
        "  --out DIR             directory for BENCH_<group>.json\n"
        "  --metrics-out DIR     one extra untimed metrics-enabled\n"
        "                        run per single-machine scenario,\n"
        "                        writing <group>_<name>.metrics.json\n"
        "  --baseline DIR        committed BENCH_<group>.json files\n"
        "                        for the informational delta report\n"
        "                        (default: the source tree)\n"
        "  --compare-decode-cache  also time with the decode cache\n"
        "                        off and record the speedup\n"
        "  --compare-engine      three-way ablation: interpreter,\n"
        "                        decode cache, block engine\n"
        "  --min-mips X          fail if any scenario simulates\n"
        "                        slower than X MIPS (smoke check)\n"
        "  --list                list scenarios and exit\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--jobs") {
            opts.jobs = std::max(1, std::atoi(value()));
        } else if (arg == "--repeat") {
            opts.repeat = std::max(1, std::atoi(value()));
        } else if (arg == "--warmup") {
            opts.warmup = std::atoi(value());
        } else if (arg == "--filter") {
            opts.filter = value();
        } else if (arg == "--out") {
            opts.out_dir = value();
        } else if (arg == "--metrics-out") {
            opts.metrics_out = value();
        } else if (arg == "--baseline") {
            opts.baseline_dir = value();
        } else if (arg == "--compare-decode-cache") {
            opts.compare_decode_cache = true;
        } else if (arg == "--compare-engine") {
            opts.compare_engine = true;
        } else if (arg == "--min-mips") {
            opts.min_mips = std::atof(value());
        } else if (arg == "--list") {
            opts.list_only = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option %s", arg.c_str());
        }
    }

    std::vector<Scenario> scenarios = allScenarios();
    if (!opts.filter.empty()) {
        std::erase_if(scenarios, [&](const Scenario &s) {
            return s.group.find(opts.filter) == std::string::npos &&
                   s.name.find(opts.filter) == std::string::npos;
        });
    }
    if (opts.list_only) {
        for (const auto &s : scenarios)
            std::printf("%s/%s\n", s.group.c_str(), s.name.c_str());
        return 0;
    }
    if (scenarios.empty())
        fatal("no scenarios match filter '%s'", opts.filter.c_str());

    std::vector<Measured> measured(scenarios.size());
    std::atomic<std::size_t> next{0};
    std::mutex print_mutex;

    auto worker = [&] {
        for (;;) {
            std::size_t idx = next.fetch_add(1);
            if (idx >= scenarios.size())
                return;
            const Scenario &s = scenarios[idx];
            Measured &m = measured[idx];
            m.scenario = &s;
            // Configuration 0 is always the default (headline MIPS);
            // compare modes append the ablation points. The plain
            // interpreter serves both compare modes.
            std::vector<ScenarioOptions> configs{ScenarioOptions{}};
            int off_idx = -1, block_idx = -1;
            if (opts.compare_decode_cache || opts.compare_engine) {
                ScenarioOptions interp;
                interp.decode_cache_entries = 0;
                off_idx = int(configs.size());
                configs.push_back(interp);
            }
            if (opts.compare_engine) {
                ScenarioOptions blk;
                blk.block_engine = true;
                block_idx = int(configs.size());
                configs.push_back(blk);
            }
            std::vector<Timing> timings =
                timeScenario(s, configs, opts.warmup, opts.repeat);
            m.on = timings[0];
            if (off_idx >= 0)
                m.off = timings[off_idx];
            m.compared = opts.compare_decode_cache;
            m.engine_compared = opts.compare_engine;
            if (block_idx >= 0)
                m.block = timings[block_idx];
            // The fast paths must not change what was simulated.
            for (const Timing &t : timings) {
                if (t.result.guest_cycles != m.on.result.guest_cycles ||
                    t.result.guest_instructions !=
                        m.on.result.guest_instructions) {
                    fatal("%s/%s: guest totals differ between engine "
                          "configurations",
                          s.group.c_str(), s.name.c_str());
                }
            }
            if (!opts.metrics_out.empty()) {
                // One untimed run with the monitor attached; the
                // scenario writes the document itself (and skips it
                // when it has no single machine to sample).
                ScenarioOptions cfg;
                cfg.metrics_out = opts.metrics_out + "/" + s.group +
                                  "_" + s.name + ".metrics.json";
                s.run(cfg);
                if (std::ifstream(cfg.metrics_out).good())
                    m.metrics_file = cfg.metrics_out;
            }
            std::lock_guard<std::mutex> lock(print_mutex);
            std::printf("  %-28s %12llu cycles  %8.3f s  %7.1f MIPS\n",
                        (s.group + "/" + s.name).c_str(),
                        (unsigned long long)m.on.result.guest_cycles,
                        m.on.median_seconds, mips(m.on));
            if (opts.compare_engine) {
                auto best_mips = [](const Timing &t) {
                    return t.best_seconds > 0.0
                               ? t.result.guest_instructions /
                                     t.best_seconds / 1e6
                               : 0.0;
                };
                std::printf("    engines: interpret %7.1f  "
                            "decode-cache %7.1f  block %7.1f MIPS "
                            "(best of repeats)\n",
                            best_mips(m.off), best_mips(m.on),
                            best_mips(m.block));
            }
            if (!m.metrics_file.empty())
                std::printf("    metrics: wrote %s\n",
                            m.metrics_file.c_str());
        }
    };

    std::printf("running %zu scenarios on %u threads "
                "(warmup %u, repeat %u)\n",
                scenarios.size(), opts.jobs, opts.warmup, opts.repeat);
    auto wall0 = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    for (unsigned j = 0; j < opts.jobs; ++j)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    double total = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall0)
                       .count();
    std::printf("done in %.3f s\n", total);

    // Group results and emit one JSON file per group.
    std::vector<std::string> groups;
    for (const auto &m : measured) {
        if (std::find(groups.begin(), groups.end(),
                      m.scenario->group) == groups.end())
            groups.push_back(m.scenario->group);
    }
    for (const auto &g : groups) {
        std::vector<const Measured *> rows;
        for (const auto &m : measured)
            if (m.scenario->group == g)
                rows.push_back(&m);
        std::string path = opts.out_dir + "/BENCH_" + g + ".json";
        writeGroupJson(path, g, opts, rows);
        std::printf("wrote %s\n", path.c_str());
    }

    reportBaselineDeltas(opts, groups, measured);

    if (opts.min_mips > 0.0) {
        bool ok = true;
        for (const auto &m : measured) {
            if (mips(m.on) < opts.min_mips) {
                std::fprintf(stderr,
                             "FAIL: %s/%s at %.1f MIPS "
                             "(threshold %.1f)\n",
                             m.scenario->group.c_str(),
                             m.scenario->name.c_str(), mips(m.on),
                             opts.min_mips);
                ok = false;
            }
        }
        if (!ok)
            return 1;
    }
    return 0;
}
