/**
 * @file
 * isagrid-sim — command-line driver for the ISA-Grid simulator.
 *
 * Runs a workload on a mini-kernel configuration and reports cycles,
 * instructions, privilege statistics and (optionally) a full
 * execution trace:
 *
 *   isagrid-sim [options]
 *     --arch=riscv|x86          target prototype       [riscv]
 *     --mode=native|decomposed|nested                  [decomposed]
 *     --workload=sqlite|mbedtls|gzip|tar|lmbench       [sqlite]
 *     --blocks=N                app run length         [24000]
 *     --iters=N                 lmbench iterations     [200]
 *     --pcu=16e|8e|8en          privilege caches       [8e]
 *     --timer=N                 timer interrupt period [0 = off]
 *     --tstacks                 per-thread trusted stacks
 *     --monitor-log             journal mapping changes (nested)
 *     --trace=FILE              write an execution trace
 *     --stats                   dump all statistics
 *
 * Examples:
 *   isagrid-sim --arch=x86 --mode=nested --workload=tar --stats
 *   isagrid-sim --workload=lmbench --mode=decomposed
 *   isagrid-sim --workload=sqlite --timer=25000 --tstacks --trace=t.log
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "kernel/kernel_builder.hh"
#include "workloads/apps.hh"
#include "workloads/lmbench.hh"

using namespace isagrid;

namespace {

struct Options
{
    bool x86 = false;
    KernelMode mode = KernelMode::Decomposed;
    std::string workload = "sqlite";
    unsigned blocks = 24000;
    unsigned iters = 200;
    PcuConfig pcu = PcuConfig::config8E();
    Cycle timer = 0;
    bool tstacks = false;
    bool monitor_log = false;
    std::string trace_file;
    bool stats = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--arch=riscv|x86] "
                 "[--mode=native|decomposed|nested]\n"
                 "  [--workload=sqlite|mbedtls|gzip|tar|lmbench] "
                 "[--blocks=N] [--iters=N]\n"
                 "  [--pcu=16e|8e|8en] [--timer=N] [--tstacks] "
                 "[--monitor-log]\n"
                 "  [--trace=FILE] [--stats]\n",
                 argv0);
    std::exit(2);
}

bool
eat(const char *arg, const char *key, std::string &value)
{
    std::size_t len = std::strlen(key);
    if (std::strncmp(arg, key, len) == 0 && arg[len] == '=') {
        value = arg + len + 1;
        return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (eat(argv[i], "--arch", v)) {
            if (v == "x86")
                opt.x86 = true;
            else if (v != "riscv")
                usage(argv[0]);
        } else if (eat(argv[i], "--mode", v)) {
            if (v == "native")
                opt.mode = KernelMode::Monolithic;
            else if (v == "decomposed")
                opt.mode = KernelMode::Decomposed;
            else if (v == "nested")
                opt.mode = KernelMode::NestedMonitor;
            else
                usage(argv[0]);
        } else if (eat(argv[i], "--workload", v)) {
            opt.workload = v;
        } else if (eat(argv[i], "--blocks", v)) {
            opt.blocks = unsigned(std::stoul(v));
        } else if (eat(argv[i], "--iters", v)) {
            opt.iters = unsigned(std::stoul(v));
        } else if (eat(argv[i], "--pcu", v)) {
            if (v == "16e")
                opt.pcu = PcuConfig::config16E();
            else if (v == "8e")
                opt.pcu = PcuConfig::config8E();
            else if (v == "8en")
                opt.pcu = PcuConfig::config8EN();
            else
                usage(argv[0]);
        } else if (eat(argv[i], "--timer", v)) {
            opt.timer = std::stoull(v);
        } else if (eat(argv[i], "--trace", v)) {
            opt.trace_file = v;
        } else if (std::strcmp(argv[i], "--tstacks") == 0) {
            opt.tstacks = true;
        } else if (std::strcmp(argv[i], "--monitor-log") == 0) {
            opt.monitor_log = true;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            opt.stats = true;
        } else {
            usage(argv[0]);
        }
    }
    return opt;
}

AppProfile
profileByName(const std::string &name)
{
    for (const AppProfile &p : AppProfile::all())
        if (p.name == name)
            return p;
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);

    MachineConfig mc;
    mc.pcu = opt.pcu;
    auto machine = opt.x86 ? Machine::gem5x86(mc) : Machine::rocket(mc);

    Addr entry;
    if (opt.workload == "lmbench") {
        entry = buildLmbenchSuite(*machine, opt.iters);
    } else {
        AppProfile profile = profileByName(opt.workload);
        profile.total_blocks = opt.blocks;
        entry = buildApp(*machine, profile);
    }

    KernelConfig config;
    config.mode = opt.mode;
    config.monitor_log = opt.monitor_log;
    config.timer_interval = opt.timer;
    config.per_thread_tstack = opt.tstacks;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(entry);

    std::ofstream trace;
    if (!opt.trace_file.empty()) {
        trace.open(opt.trace_file);
        if (!trace)
            fatal("cannot open trace file %s", opt.trace_file.c_str());
        machine->core().setTrace(&trace);
    }

    RunResult r = machine->run(image.boot_pc, 2'000'000'000ull);
    machine->core().setTrace(nullptr);
    if (r.reason != StopReason::Halted) {
        std::printf("stopped: %s at %#llx\n", faultName(r.fault),
                    (unsigned long long)r.fault_pc);
        return 1;
    }

    std::printf("arch            : %s\n", opt.x86 ? "x86" : "riscv");
    std::printf("mode            : %s\n",
                opt.mode == KernelMode::Monolithic  ? "native"
                : opt.mode == KernelMode::Decomposed ? "decomposed"
                                                     : "nested");
    std::printf("workload        : %s\n", opt.workload.c_str());
    std::printf("instructions    : %llu\n",
                (unsigned long long)r.instructions);
    std::printf("cycles          : %llu\n",
                (unsigned long long)r.cycles);
    std::printf("IPC             : %.3f\n",
                double(r.instructions) / double(r.cycles));
    std::printf("domain switches : %llu\n",
                (unsigned long long)machine->pcu().switches());
    std::printf("privilege faults: %llu\n",
                (unsigned long long)machine->pcu().faults());
    std::printf("per-domain usage:\n");
    for (const auto &[domain, usage] : machine->core().domainUsage()) {
        std::printf("  d%-3llu %12llu insts %12llu cycles (%.2f%%)\n",
                    (unsigned long long)domain,
                    (unsigned long long)usage.instructions,
                    (unsigned long long)usage.cycles,
                    100.0 * double(usage.cycles) / double(r.cycles));
    }

    if (opt.workload == "lmbench") {
        std::printf("\nper-operation cycles:\n");
        for (const auto &res :
             extractLmbenchResults(machine->core(), opt.iters)) {
            std::printf("  %-12s %10.1f\n", lmbenchOpName(res.op),
                        res.cycles_per_op);
        }
    } else {
        std::printf("ROI cycles      : %llu\n",
                    (unsigned long long)appRoiCycles(machine->core()));
    }

    if (opt.stats) {
        std::printf("\n");
        machine->dumpStats(std::cout);
    }
    return 0;
}
