/**
 * @file
 * isagrid-sim — command-line driver for the ISA-Grid simulator.
 *
 * Runs a workload on a mini-kernel configuration and reports cycles,
 * instructions, privilege statistics and (optionally) a full
 * execution trace:
 *
 *   isagrid-sim [options]
 *     --arch=riscv|x86          target prototype       [riscv]
 *     --mode=native|decomposed|nested                  [decomposed]
 *     --workload=sqlite|mbedtls|gzip|tar|lmbench|attacks   [sqlite]
 *     --blocks=N                app run length         [24000]
 *     --iters=N                 lmbench iterations     [200]
 *     --pcu=16e|8e|8en          privilege caches       [8e]
 *     --block-engine[=N]        run hot blocks translated (host fast
 *                               path; N = hotness threshold)
 *     --timer=N                 timer interrupt period [0 = off]
 *     --tstacks                 per-thread trusted stacks
 *     --monitor-log             journal mapping changes (nested)
 *     --trace=FILE              write a text execution trace
 *     --trace-events=FILE       write a binary .isatrace event trace
 *     --trace-filter=KINDS      event kinds to record  [default]
 *     --stats                   dump all statistics
 *     --stats-json=FILE         dump all statistics as JSON
 *     --metrics-out=FILE        epoch-sampled metrics + profile JSON
 *     --metrics-prom=FILE       final metrics, Prometheus exposition
 *     --flame-out=FILE          collapsed stacks (FlameGraph format)
 *     --metrics-interval=N      instructions per metrics epoch [1M]
 *     --profile-interval=N      instructions per pc sample   [100k]
 *
 * --trace-filter takes a comma-separated list of event-kind names
 * (domain-switch, gate-call, cache-miss, ...) or group aliases (all,
 * default/switching, check, cache, gate, trap, csr, mark, block); see
 * sim/trace.hh. The --workload=attacks corpus runs every Table 1
 * attack payload natively and under ISA-Grid, stamping each run with
 * its own trace core id.
 *
 * Any --metrics-out/--metrics-prom/--flame-out flag enables the
 * performance monitor (sim/metrics.hh): probes sampled every
 * --metrics-interval retired instructions, guest pcs every
 * --profile-interval. `tools/isagrid-perf` analyzes the JSON.
 *
 * Examples:
 *   isagrid-sim --arch=x86 --mode=nested --workload=tar --stats
 *   isagrid-sim --workload=lmbench --trace-events=lm.isatrace
 *   isagrid-sim --workload=attacks --trace-events=atk.isatrace \
 *       --trace-filter=all --stats-json=atk.json
 *   isagrid-sim --workload=lmbench --block-engine \
 *       --metrics-out=lm.metrics.json --flame-out=lm.folded
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "attacks/attacks.hh"
#include "kernel/kernel_builder.hh"
#include "sim/metrics.hh"
#include "sim/trace.hh"
#include "workloads/apps.hh"
#include "workloads/lmbench.hh"

using namespace isagrid;

namespace {

struct Options
{
    bool x86 = false;
    KernelMode mode = KernelMode::Decomposed;
    std::string workload = "sqlite";
    unsigned blocks = 24000;
    unsigned iters = 200;
    PcuConfig pcu = PcuConfig::config8E();
    bool block_engine = false;
    std::uint32_t block_hot_threshold = BlockEngine::kDefaultHotThreshold;
    Cycle timer = 0;
    bool tstacks = false;
    bool monitor_log = false;
    std::string trace_file;
    std::string trace_events_file;
    std::uint64_t trace_filter = kTraceFilterDefault;
    bool stats = false;
    std::string stats_json_file;
    std::string metrics_out_file;
    std::string metrics_prom_file;
    std::string flame_out_file;
    PerfConfig perf; //!< intervals; outputs above enable the monitor

    bool
    wantMetrics() const
    {
        return !metrics_out_file.empty() ||
               !metrics_prom_file.empty() || !flame_out_file.empty();
    }
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--arch=riscv|x86] "
                 "[--mode=native|decomposed|nested]\n"
                 "  [--workload=sqlite|mbedtls|gzip|tar|lmbench|attacks] "
                 "[--blocks=N] [--iters=N]\n"
                 "  [--pcu=16e|8e|8en] [--block-engine[=N]] "
                 "[--timer=N] [--tstacks] [--monitor-log]\n"
                 "  [--trace=FILE] [--trace-events=FILE] "
                 "[--trace-filter=KINDS]\n"
                 "  [--stats] [--stats-json=FILE]\n"
                 "  [--metrics-out=FILE] [--metrics-prom=FILE] "
                 "[--flame-out=FILE]\n"
                 "  [--metrics-interval=N] [--profile-interval=N]\n",
                 argv0);
    std::exit(2);
}

bool
eat(const char *arg, const char *key, std::string &value)
{
    std::size_t len = std::strlen(key);
    if (std::strncmp(arg, key, len) == 0 && arg[len] == '=') {
        value = arg + len + 1;
        return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (eat(argv[i], "--arch", v)) {
            if (v == "x86")
                opt.x86 = true;
            else if (v != "riscv")
                usage(argv[0]);
        } else if (eat(argv[i], "--mode", v)) {
            if (v == "native")
                opt.mode = KernelMode::Monolithic;
            else if (v == "decomposed")
                opt.mode = KernelMode::Decomposed;
            else if (v == "nested")
                opt.mode = KernelMode::NestedMonitor;
            else
                usage(argv[0]);
        } else if (eat(argv[i], "--workload", v)) {
            opt.workload = v;
        } else if (eat(argv[i], "--blocks", v)) {
            opt.blocks = unsigned(std::stoul(v));
        } else if (eat(argv[i], "--iters", v)) {
            opt.iters = unsigned(std::stoul(v));
        } else if (eat(argv[i], "--pcu", v)) {
            if (v == "16e")
                opt.pcu = PcuConfig::config16E();
            else if (v == "8e")
                opt.pcu = PcuConfig::config8E();
            else if (v == "8en")
                opt.pcu = PcuConfig::config8EN();
            else
                usage(argv[0]);
        } else if (eat(argv[i], "--block-engine", v)) {
            opt.block_engine = true;
            opt.block_hot_threshold = unsigned(std::stoul(v));
        } else if (std::strcmp(argv[i], "--block-engine") == 0) {
            opt.block_engine = true;
        } else if (eat(argv[i], "--timer", v)) {
            opt.timer = std::stoull(v);
        } else if (eat(argv[i], "--trace", v)) {
            opt.trace_file = v;
        } else if (eat(argv[i], "--trace-events", v)) {
            opt.trace_events_file = v;
        } else if (eat(argv[i], "--trace-filter", v)) {
            std::string error;
            if (!parseTraceFilter(v, opt.trace_filter, error))
                fatal("--trace-filter: %s", error.c_str());
        } else if (eat(argv[i], "--stats-json", v)) {
            opt.stats_json_file = v;
        } else if (eat(argv[i], "--metrics-out", v)) {
            opt.metrics_out_file = v;
        } else if (eat(argv[i], "--metrics-prom", v)) {
            opt.metrics_prom_file = v;
        } else if (eat(argv[i], "--flame-out", v)) {
            opt.flame_out_file = v;
        } else if (eat(argv[i], "--metrics-interval", v)) {
            opt.perf.metrics_interval = std::stoull(v);
        } else if (eat(argv[i], "--profile-interval", v)) {
            opt.perf.profile_interval = std::stoull(v);
        } else if (std::strcmp(argv[i], "--tstacks") == 0) {
            opt.tstacks = true;
        } else if (std::strcmp(argv[i], "--monitor-log") == 0) {
            opt.monitor_log = true;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            opt.stats = true;
        } else {
            usage(argv[0]);
        }
    }
    return opt;
}

AppProfile
profileByName(const std::string &name)
{
    for (const AppProfile &p : AppProfile::all())
        if (p.name == name)
            return p;
    fatal("unknown workload '%s'", name.c_str());
}

/** A short (<= 8 char, packTraceName-safe) tag for a service domain. */
const char *
serviceTag(Sys sys)
{
    switch (sys) {
      case Sys::Read: case Sys::Write: case Sys::Open:
      case Sys::Close: case Sys::Stat:
        return "fs";
      case Sys::PipeWrite: case Sys::PipeRead:
        return "pipe";
      case Sys::SigInstall: case Sys::SigRaise: case Sys::SigReturn:
        return "signal";
      case Sys::CtxSwitch:
        return "sched";
      case Sys::MmapTouch:
        return "mm";
      case Sys::ServiceCpuid: return "cpuid";
      case Sys::ServiceMtrr: return "mtrr";
      case Sys::ServicePmc0: return "pmc0";
      case Sys::ServicePmc1: return "pmc1";
      default:
        return "svc";
    }
}

/** Announce the kernel image's domain names as trace metadata. */
void
emitDomainNames(TraceBuffer &trace, const KernelImage &image)
{
    trace.emit(TraceKind::DomainName, 0, packTraceName("dom0"));
    trace.emit(TraceKind::DomainName, image.kernel_domain,
               packTraceName("kernel"));
    if (image.mm_domain != image.kernel_domain) {
        trace.emit(TraceKind::DomainName, image.mm_domain,
                   packTraceName("monitor"));
    }
    for (const auto &[sys, domain] : image.service_domains) {
        if (domain == image.kernel_domain || domain == image.mm_domain)
            continue;
        trace.emit(TraceKind::DomainName, domain,
                   packTraceName(serviceTag(sys)));
    }
}

/** Wire the machine-owned trace into @p sink under the option filter. */
void
wireTrace(Machine &machine, const Options &opt, BinaryTraceSink &sink,
          std::uint8_t core_id)
{
    TraceBuffer &trace = machine.enableTracing();
    trace.attachSink(&sink);
    trace.setFilter(opt.trace_filter);
    trace.setCoreId(core_id);
}

/** Enable the monitor and seed its regions from the kernel image. */
void
wireMetrics(Machine &machine, const Options &opt,
            const KernelImage &image)
{
    if (!opt.wantMetrics())
        return;
    PerfMonitor &perf = machine.enableMetrics(opt.perf);
    std::vector<ProfRegion> regions;
    for (const CodeRegion &r : image.code_regions)
        regions.push_back({r.base, r.limit, std::uint32_t(r.domain),
                           r.name});
    perf.profiler().setRegions(std::move(regions));
}

/** Finalize the epoch series and write every requested export. */
void
writeMetricsOutputs(Machine &machine, const Options &opt)
{
    PerfMonitor *perf = machine.perf();
    if (!perf)
        return;
    perf->finalize(
        std::uint64_t(machine.core().stats().lookup("core.instructions")),
        Cycle(machine.core().stats().lookup("core.cycles")));
    if (!opt.metrics_out_file.empty()) {
        std::ofstream os(opt.metrics_out_file);
        if (!os)
            fatal("cannot open %s", opt.metrics_out_file.c_str());
        perf->writeJson(os);
    }
    if (!opt.metrics_prom_file.empty()) {
        std::ofstream os(opt.metrics_prom_file);
        if (!os)
            fatal("cannot open %s", opt.metrics_prom_file.c_str());
        perf->writePrometheus(os);
    }
    if (!opt.flame_out_file.empty()) {
        std::ofstream os(opt.flame_out_file);
        if (!os)
            fatal("cannot open %s", opt.flame_out_file.c_str());
        perf->profiler().writeCollapsed(os);
    }
}

/**
 * The attack-corpus workload: every Table 1 scenario, natively and
 * under ISA-Grid. Each run gets its own machine and trace core id;
 * all runs stream into one .isatrace file.
 */
int
runAttackCorpus(const Options &opt, std::ofstream *events_os)
{
    std::optional<BinaryTraceSink> sink;
    if (events_os)
        sink.emplace(*events_os);
    std::uint8_t next_core = 0;
    unsigned blocked = 0, succeeded = 0, runs = 0;
    std::uint64_t total_events = 0;
    std::unique_ptr<Machine> last_machine;

    std::printf("attack corpus (%s):\n", opt.x86 ? "x86" : "riscv");
    for (const AttackScenario &scenario : attackScenarios(opt.x86)) {
        for (bool with_isagrid : {true, false}) {
            if (scenario.requires_isagrid && !with_isagrid)
                continue;
            PreparedAttack prepared =
                prepareAttack(scenario, opt.x86, with_isagrid);
            Machine &m = *prepared.machine;
            if (opt.block_engine)
                m.core().setBlockEngine(opt.block_hot_threshold);
            if (sink) {
                wireTrace(m, opt, *sink, next_core++);
                emitDomainNames(*m.trace(), prepared.image);
            }
            wireMetrics(m, opt, prepared.image);
            m.core().reset(prepared.payload_entry);
            if (with_isagrid) {
                m.pcu().setGridReg(GridReg::Domain,
                                   prepared.payload_domain);
            }
            RunResult r = m.core().run(100'000);
            bool halted = r.reason == StopReason::Halted;
            ++runs;
            (halted ? succeeded : blocked)++;
            std::printf("  %-28s %-10s %s\n", scenario.name.c_str(),
                        with_isagrid ? "isagrid" : "native",
                        halted ? "completed"
                               : faultName(r.fault));
            if (sink) {
                m.trace()->flush();
                total_events += m.trace()->emitted();
            }
            last_machine = std::move(prepared.machine);
        }
    }
    std::printf("%u runs: %u completed, %u blocked\n", runs, succeeded,
                blocked);
    if (sink)
        std::printf("trace events    : %llu\n",
                    (unsigned long long)total_events);
    if (!opt.stats_json_file.empty() && last_machine) {
        std::ofstream os(opt.stats_json_file);
        if (!os)
            fatal("cannot open %s", opt.stats_json_file.c_str());
        last_machine->dumpStatsJson(os);
    }
    // Like --stats-json, the metrics exports cover the last run of
    // the corpus (each scenario gets a fresh machine).
    if (last_machine)
        writeMetricsOutputs(*last_machine, opt);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);

    std::ofstream events;
    std::ofstream *events_os = nullptr;
    if (!opt.trace_events_file.empty()) {
        events.open(opt.trace_events_file, std::ios::binary);
        if (!events)
            fatal("cannot open trace file %s",
                  opt.trace_events_file.c_str());
        events_os = &events;
    }

    if (opt.workload == "attacks")
        return runAttackCorpus(opt, events_os);

    MachineConfig mc;
    mc.pcu = opt.pcu;
    mc.block_engine = opt.block_engine;
    mc.block_hot_threshold = opt.block_hot_threshold;
    auto machine = opt.x86 ? Machine::gem5x86(mc) : Machine::rocket(mc);

    Addr entry;
    if (opt.workload == "lmbench") {
        entry = buildLmbenchSuite(*machine, opt.iters);
    } else {
        AppProfile profile = profileByName(opt.workload);
        profile.total_blocks = opt.blocks;
        entry = buildApp(*machine, profile);
    }

    KernelConfig config;
    config.mode = opt.mode;
    config.monitor_log = opt.monitor_log;
    config.timer_interval = opt.timer;
    config.per_thread_tstack = opt.tstacks;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(entry);

    std::ofstream trace;
    if (!opt.trace_file.empty()) {
        trace.open(opt.trace_file);
        if (!trace)
            fatal("cannot open trace file %s", opt.trace_file.c_str());
        machine->core().setTrace(&trace);
    }

    BinaryTraceSink sink(events);
    if (events_os) {
        wireTrace(*machine, opt, sink, 0);
        emitDomainNames(*machine->trace(), image);
    }
    wireMetrics(*machine, opt, image);

    RunResult r = machine->run(image.boot_pc, 2'000'000'000ull);
    machine->core().setTrace(nullptr);
    if (events_os)
        machine->trace()->flush();
    writeMetricsOutputs(*machine, opt);
    if (r.reason != StopReason::Halted) {
        std::printf("stopped: %s at %#llx\n", faultName(r.fault),
                    (unsigned long long)r.fault_pc);
        return 1;
    }

    std::printf("arch            : %s\n", opt.x86 ? "x86" : "riscv");
    std::printf("mode            : %s\n",
                opt.mode == KernelMode::Monolithic  ? "native"
                : opt.mode == KernelMode::Decomposed ? "decomposed"
                                                     : "nested");
    std::printf("workload        : %s\n", opt.workload.c_str());
    std::printf("instructions    : %llu\n",
                (unsigned long long)r.instructions);
    std::printf("cycles          : %llu\n",
                (unsigned long long)r.cycles);
    std::printf("IPC             : %.3f\n",
                double(r.instructions) / double(r.cycles));
    std::printf("domain switches : %llu\n",
                (unsigned long long)machine->pcu().switches());
    std::printf("privilege faults: %llu\n",
                (unsigned long long)machine->pcu().faults());
    if (events_os) {
        std::printf("trace events    : %llu (%llu dropped)\n",
                    (unsigned long long)machine->trace()->emitted(),
                    (unsigned long long)
                        machine->trace()->droppedEvents());
    }
    std::printf("per-domain usage:\n");
    for (const auto &[domain, usage] : machine->core().domainUsage()) {
        std::printf("  d%-3llu %12llu insts %12llu cycles (%.2f%%)\n",
                    (unsigned long long)domain,
                    (unsigned long long)usage.instructions,
                    (unsigned long long)usage.cycles,
                    100.0 * double(usage.cycles) / double(r.cycles));
    }

    if (opt.workload == "lmbench") {
        std::printf("\nper-operation cycles:\n");
        for (const auto &res :
             extractLmbenchResults(machine->core(), opt.iters)) {
            std::printf("  %-12s %10.1f\n", lmbenchOpName(res.op),
                        res.cycles_per_op);
        }
    } else {
        std::printf("ROI cycles      : %llu\n",
                    (unsigned long long)appRoiCycles(machine->core()));
    }

    if (opt.stats) {
        std::printf("\n");
        machine->dumpStats(std::cout);
    }
    if (!opt.stats_json_file.empty()) {
        std::ofstream os(opt.stats_json_file);
        if (!os)
            fatal("cannot open %s", opt.stats_json_file.c_str());
        machine->dumpStatsJson(os);
    }
    return 0;
}
