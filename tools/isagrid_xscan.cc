/**
 * @file
 * isagrid-xscan — superset disassembly and unintended-instruction
 * privilege audit: every byte offset of every privilege-granted code
 * region is decoded, pruned against what control flow can actually
 * reach, and each surviving hidden privileged instruction is
 * discharged by a targeted dynamic probe
 * (docs/unintended_instructions.md).
 *
 * Builds a mini-kernel configuration (or one of the attack scenarios)
 * and audits the loaded image:
 *
 *   isagrid-xscan [options]
 *     --arch=riscv|x86          target prototype       [riscv]
 *     --mode=native|decomposed|nested                  [decomposed]
 *     --timer=N                 timer interrupt period [0 = off]
 *     --tstacks                 per-thread trusted stacks
 *     --attack=NAME             audit an attack-scenario image
 *     --list-attacks            print scenario names and exit
 *     --max-findings=N          recording cap          [256]
 *     --static-only             skip the dynamic probes
 *     --fail-on=violation|warning  exit-1 threshold    [violation]
 *     --json                    machine-readable report
 *     --stats                   scan statistics line
 *
 * Exit status: 0 when the image is clean at the --fail-on threshold,
 * 1 when it is not, 2 on usage errors, 3 when a finding is left
 * PLAUSIBLE after a full (static + dynamic) run — the probe harness
 * and the scan disagree, which is always a bug in one of them.
 *
 * Examples:
 *   isagrid-xscan --arch=x86 --mode=nested --stats
 *   isagrid-xscan --arch=x86 \
 *       --attack="Hidden instruction chain (immediates)" --json
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "attacks/attacks.hh"
#include "kernel/kernel_builder.hh"
#include "kernel/layout.hh"
#include "verify/report_common.hh"
#include "verify/superset.hh"

using namespace isagrid;

namespace {

struct Options
{
    bool x86 = false;
    KernelMode mode = KernelMode::Decomposed;
    Cycle timer = 0;
    bool tstacks = false;
    std::string attack;
    bool list_attacks = false;
    bool json = false;
    bool stats = false;
    Severity fail_on = Severity::Violation;
    XscanOptions xscan;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--arch=riscv|x86] "
                 "[--mode=native|decomposed|nested]\n"
                 "  [--timer=N] [--tstacks] [--attack=NAME] "
                 "[--list-attacks]\n"
                 "  [--max-findings=N] [--static-only]\n"
                 "  [--fail-on=violation|warning] [--json] [--stats]\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (eatOption(argv[i], "--arch", v)) {
            if (v == "x86")
                opt.x86 = true;
            else if (v != "riscv")
                usage(argv[0]);
        } else if (eatOption(argv[i], "--mode", v)) {
            if (v == "native")
                opt.mode = KernelMode::Monolithic;
            else if (v == "decomposed")
                opt.mode = KernelMode::Decomposed;
            else if (v == "nested")
                opt.mode = KernelMode::NestedMonitor;
            else
                usage(argv[0]);
        } else if (eatOption(argv[i], "--timer", v)) {
            opt.timer = std::stoull(v);
        } else if (eatOption(argv[i], "--attack", v)) {
            if (v.empty())
                usage(argv[0]);
            opt.attack = v;
        } else if (eatOption(argv[i], "--max-findings", v)) {
            opt.xscan.max_findings = std::stoull(v);
        } else if (eatOption(argv[i], "--fail-on", v)) {
            if (!parseFailOn(v, false, opt.fail_on))
                usage(argv[0]);
        } else if (std::strcmp(argv[i], "--list-attacks") == 0) {
            opt.list_attacks = true;
        } else if (std::strcmp(argv[i], "--tstacks") == 0) {
            opt.tstacks = true;
        } else if (std::strcmp(argv[i], "--static-only") == 0) {
            opt.xscan.run_dynamic = false;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opt.json = true;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            opt.stats = true;
        } else {
            usage(argv[0]);
        }
    }
    return opt;
}

XscanScenario
kernelScenario(const Options &opt)
{
    XscanScenario scenario;
    KernelConfig config;
    config.mode = opt.mode;
    config.timer_interval = opt.timer;
    config.per_thread_tstack = opt.tstacks;
    bool x86 = opt.x86;
    scenario.build = [x86, config]() {
        auto machine = x86 ? Machine::gem5x86() : Machine::rocket();
        auto ua = x86 ? makeX86Asm(layout::userCodeBase)
                      : makeRiscvAsm(layout::userCodeBase);
        ua->li(ua->regArg(0), 0);
        ua->halt(ua->regArg(0));
        ua->loadInto(machine->mem());
        KernelBuilder builder(*machine, config);
        builder.build(layout::userCodeBase);
        return machine;
    };
    // Probe build once for the entry points and the code map.
    auto probe = opt.x86 ? Machine::gem5x86() : Machine::rocket();
    auto pa = opt.x86 ? makeX86Asm(layout::userCodeBase)
                      : makeRiscvAsm(layout::userCodeBase);
    pa->li(pa->regArg(0), 0);
    pa->halt(pa->regArg(0));
    pa->loadInto(probe->mem());
    KernelBuilder builder(*probe, config);
    KernelImage image = builder.build(layout::userCodeBase);
    scenario.entries = {image.boot_pc, image.trap_entry};
    scenario.code_regions = image.code_regions;
    return scenario;
}

XscanScenario
attackScenario(const Options &opt)
{
    for (const AttackScenario &s : attackScenarios(opt.x86)) {
        if (s.name != opt.attack)
            continue;
        bool x86 = opt.x86;
        XscanScenario scenario;
        scenario.build = [s, x86]() {
            PreparedAttack prepared = prepareAttack(s, x86, true);
            return std::move(prepared.machine);
        };
        PreparedAttack prepared = prepareAttack(s, opt.x86, true);
        scenario.entries = {prepared.image.boot_pc,
                            prepared.image.trap_entry,
                            prepared.payload_entry};
        scenario.code_regions = prepared.image.code_regions;
        return scenario;
    }
    fatal("unknown attack scenario '%s' for %s (try --list-attacks)",
          opt.attack.c_str(), opt.x86 ? "x86" : "riscv");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);

    if (opt.list_attacks) {
        for (const AttackScenario &s : attackScenarios(opt.x86))
            std::printf("%s\n", s.name.c_str());
        return 0;
    }

    XscanScenario scenario = opt.attack.empty() ? kernelScenario(opt)
                                                : attackScenario(opt);
    XscanReport report = runXscan(scenario, opt.xscan);

    if (opt.json)
        std::printf("%s\n", report.json().c_str());
    else
        std::printf("%s", report.text().c_str());
    if (opt.stats) {
        std::fprintf(stderr,
                     "xscan-stats: regions=%llu offsets=%llu "
                     "hidden_valid=%llu entries=%llu reachable=%llu "
                     "misaligned=%llu widened=%llu discharges=%llu\n",
                     (unsigned long long)report.stats.regions,
                     (unsigned long long)report.stats.offsets_scanned,
                     (unsigned long long)report.stats.hidden_valid,
                     (unsigned long long)report.stats.entry_points,
                     (unsigned long long)report.stats.reachable,
                     (unsigned long long)
                         report.stats.reachable_misaligned,
                     (unsigned long long)report.stats.widened,
                     (unsigned long long)report.stats.discharges);
    }

    // A full run must leave nothing PLAUSIBLE: every finding is either
    // dynamically confirmed or discharged. A leftover means the scan
    // and the probe harness disagree — a bug in one of them.
    if (opt.xscan.run_static && opt.xscan.run_dynamic &&
        report.plausible() > 0)
        return 3;

    return failingCount(report.violations(), report.warnings(), 0,
                        opt.fail_on) > 0
               ? 1
               : 0;
}
