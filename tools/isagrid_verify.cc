/**
 * @file
 * isagrid-verify — static privilege-policy verifier for guest images
 * and domain configurations.
 *
 * Builds a mini-kernel configuration (or one of the attack scenarios)
 * and runs the src/verify analyses over the resulting image and
 * privilege tables without simulating a single instruction:
 *
 *   isagrid-verify [options]
 *     --arch=riscv|x86          target prototype       [riscv]
 *     --mode=native|decomposed|nested                  [decomposed]
 *     --timer=N                 timer interrupt period [0 = off]
 *     --tstacks                 per-thread trusted stacks
 *     --attack=NAME             verify an attack-scenario image
 *     --list-attacks            print scenario names and exit
 *     --lint                    least-privilege lint findings
 *     --no-misaligned           skip the misaligned-offset scan
 *     --superset                also run the superset-disassembly
 *                               reachability audit (isagrid-xscan's
 *                               static half) and merge its findings
 *     --fail-on=SEVERITY        exit non-zero at/above violation,
 *                               warning or lint          [violation]
 *     --json                    machine-readable report
 *
 * Exit status: 0 when no finding reaches the --fail-on threshold, 1
 * when at least one does, 2 on usage errors. By default only
 * violations fail the run; warnings and lints are advisory unless the
 * threshold is lowered.
 *
 * Examples:
 *   isagrid-verify --arch=x86 --mode=nested --tstacks
 *   isagrid-verify --attack="CR3 abuse" --json
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "attacks/attacks.hh"
#include "kernel/kernel_builder.hh"
#include "kernel/layout.hh"
#include "verify/report_common.hh"
#include "verify/verify.hh"

using namespace isagrid;

namespace {

struct Options
{
    bool x86 = false;
    KernelMode mode = KernelMode::Decomposed;
    Cycle timer = 0;
    bool tstacks = false;
    std::string attack;
    bool list_attacks = false;
    bool json = false;
    Severity fail_on = Severity::Violation;
    VerifyOptions verify;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--arch=riscv|x86] "
                 "[--mode=native|decomposed|nested]\n"
                 "  [--timer=N] [--tstacks] [--attack=NAME] "
                 "[--list-attacks]\n"
                 "  [--lint] [--no-misaligned] [--superset] "
                 "[--fail-on=violation|warning|lint] [--json]\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (eatOption(argv[i], "--arch", v)) {
            if (v == "x86")
                opt.x86 = true;
            else if (v != "riscv")
                usage(argv[0]);
        } else if (eatOption(argv[i], "--mode", v)) {
            if (v == "native")
                opt.mode = KernelMode::Monolithic;
            else if (v == "decomposed")
                opt.mode = KernelMode::Decomposed;
            else if (v == "nested")
                opt.mode = KernelMode::NestedMonitor;
            else
                usage(argv[0]);
        } else if (eatOption(argv[i], "--timer", v)) {
            opt.timer = std::stoull(v);
        } else if (eatOption(argv[i], "--attack", v)) {
            if (v.empty())
                usage(argv[0]);
            opt.attack = v;
        } else if (std::strcmp(argv[i], "--list-attacks") == 0) {
            opt.list_attacks = true;
        } else if (std::strcmp(argv[i], "--tstacks") == 0) {
            opt.tstacks = true;
        } else if (std::strcmp(argv[i], "--lint") == 0) {
            opt.verify.lint = true;
        } else if (std::strcmp(argv[i], "--no-misaligned") == 0) {
            opt.verify.scan_misaligned = false;
        } else if (std::strcmp(argv[i], "--superset") == 0) {
            opt.verify.superset = true;
        } else if (eatOption(argv[i], "--fail-on", v)) {
            if (!parseFailOn(v, true, opt.fail_on))
                usage(argv[0]);
            // Failing on lints only makes sense if they are computed.
            if (opt.fail_on == Severity::Lint)
                opt.verify.lint = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opt.json = true;
        } else {
            usage(argv[0]);
        }
    }
    return opt;
}

/** Verify a kernel image built the normal way. */
VerifyReport
verifyKernel(const Options &opt)
{
    auto machine = opt.x86 ? Machine::gem5x86() : Machine::rocket();

    // A trivial user program so the kernel builder has an entry.
    auto ua = opt.x86 ? makeX86Asm(layout::userCodeBase)
                      : makeRiscvAsm(layout::userCodeBase);
    ua->li(ua->regArg(0), 0);
    ua->halt(ua->regArg(0));
    ua->loadInto(machine->mem());

    KernelConfig config;
    config.mode = opt.mode;
    config.timer_interval = opt.timer;
    config.per_thread_tstack = opt.tstacks;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(layout::userCodeBase);

    PolicySnapshot snap = PolicySnapshot::fromPcu(machine->pcu());
    VerifyOptions vopt = opt.verify;
    vopt.entries = {image.boot_pc, image.trap_entry};
    Verifier verifier(machine->isa(), machine->mem(), snap,
                      image.code_regions, vopt);
    return verifier.run();
}

/** Verify the image + payload of one named attack scenario. */
VerifyReport
verifyAttack(const Options &opt)
{
    for (const AttackScenario &s : attackScenarios(opt.x86)) {
        if (s.name != opt.attack)
            continue;
        PreparedAttack prepared = prepareAttack(s, opt.x86, true);
        PolicySnapshot snap =
            PolicySnapshot::fromPcu(prepared.machine->pcu());
        VerifyOptions vopt = opt.verify;
        vopt.entries = {prepared.image.boot_pc, prepared.image.trap_entry,
                        prepared.payload_entry};
        Verifier verifier(prepared.machine->isa(),
                          prepared.machine->mem(), snap,
                          prepared.image.code_regions, vopt);
        return verifier.run();
    }
    fatal("unknown attack scenario '%s' for %s (try --list-attacks)",
          opt.attack.c_str(), opt.x86 ? "x86" : "riscv");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);

    if (opt.list_attacks) {
        for (const AttackScenario &s : attackScenarios(opt.x86))
            std::printf("%s\n", s.name.c_str());
        return 0;
    }

    VerifyReport report =
        opt.attack.empty() ? verifyKernel(opt) : verifyAttack(opt);

    if (opt.json)
        std::printf("%s\n", report.json().c_str());
    else
        std::printf("%s", report.text().c_str());

    return failingCount(report.violations(), report.warnings(),
                        report.lints(), opt.fail_on) > 0 ? 1 : 0;
}
