/**
 * @file
 * isagrid-mc — bounded model checker for the domain-switching state
 * space, with simulator-replayed counterexamples.
 *
 * Builds a mini-kernel configuration (or one of the attack scenarios)
 * and explores the abstract transition system of its domain switches
 * and permitted CSR writes (src/modelcheck):
 *
 *   isagrid-mc [options]
 *     --arch=riscv|x86          target prototype       [riscv]
 *     --mode=native|decomposed|nested                  [decomposed]
 *     --timer=N                 timer interrupt period [0 = off]
 *     --tstacks                 per-thread trusted stacks
 *     --attack=NAME             check an attack-scenario image
 *     --list-attacks            print scenario names and exit
 *     --depth=N                 BFS depth bound        [8]
 *     --max-states=N            state-count cap        [65536]
 *     --domain0-violation       gates into domain-0 are violations
 *     --replay                  execute every counterexample on the
 *                               simulator and assert each step
 *     --fail-on=violation|warning  exit-1 threshold [violation]
 *     --json                    machine-readable report (includes a
 *                               "summary" object, as isagrid-verify)
 *     --stats                   exploration throughput line
 *
 * Exit status: 0 when the state space has no findings at or above the
 * --fail-on threshold, 1 when it has at least one, 2 on usage errors,
 * 3 when --replay finds a trace the simulator does not confirm (a
 * checker/simulator disagreement — always a bug in one of them).
 *
 * Examples:
 *   isagrid-mc --arch=x86 --mode=nested --depth=6
 *   isagrid-mc --attack="hcrets ROP" --replay
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "attacks/attacks.hh"
#include "kernel/kernel_builder.hh"
#include "kernel/layout.hh"
#include "modelcheck/modelcheck.hh"
#include "modelcheck/replay.hh"
#include "verify/report_common.hh"

using namespace isagrid;

namespace {

struct Options
{
    bool x86 = false;
    KernelMode mode = KernelMode::Decomposed;
    Cycle timer = 0;
    bool tstacks = false;
    std::string attack;
    bool list_attacks = false;
    bool replay = false;
    bool json = false;
    bool stats = false;
    Severity fail_on = Severity::Violation;
    McOptions mc;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--arch=riscv|x86] "
                 "[--mode=native|decomposed|nested]\n"
                 "  [--timer=N] [--tstacks] [--attack=NAME] "
                 "[--list-attacks]\n"
                 "  [--depth=N] [--max-states=N] [--domain0-violation]\n"
                 "  [--replay] [--fail-on=violation|warning] [--json] "
                 "[--stats]\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (eatOption(argv[i], "--arch", v)) {
            if (v == "x86")
                opt.x86 = true;
            else if (v != "riscv")
                usage(argv[0]);
        } else if (eatOption(argv[i], "--mode", v)) {
            if (v == "native")
                opt.mode = KernelMode::Monolithic;
            else if (v == "decomposed")
                opt.mode = KernelMode::Decomposed;
            else if (v == "nested")
                opt.mode = KernelMode::NestedMonitor;
            else
                usage(argv[0]);
        } else if (eatOption(argv[i], "--timer", v)) {
            opt.timer = std::stoull(v);
        } else if (eatOption(argv[i], "--attack", v)) {
            if (v.empty())
                usage(argv[0]);
            opt.attack = v;
        } else if (eatOption(argv[i], "--depth", v)) {
            opt.mc.depth_bound = unsigned(std::stoul(v));
        } else if (eatOption(argv[i], "--max-states", v)) {
            opt.mc.max_states = std::stoull(v);
        } else if (eatOption(argv[i], "--fail-on", v)) {
            if (!parseFailOn(v, false, opt.fail_on))
                usage(argv[0]);
        } else if (std::strcmp(argv[i], "--list-attacks") == 0) {
            opt.list_attacks = true;
        } else if (std::strcmp(argv[i], "--tstacks") == 0) {
            opt.tstacks = true;
        } else if (std::strcmp(argv[i], "--domain0-violation") == 0) {
            opt.mc.domain0_entry_violation = true;
        } else if (std::strcmp(argv[i], "--replay") == 0) {
            opt.replay = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opt.json = true;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            opt.stats = true;
        } else {
            usage(argv[0]);
        }
    }
    return opt;
}

/** Everything one check run needs, kept alive for replay. */
struct Prepared
{
    std::unique_ptr<Machine> machine;
    KernelImage image;
    PolicySnapshot snap;
    DomainId initial_domain = 0;
};

Prepared
prepareKernel(const Options &opt)
{
    Prepared p;
    p.machine = opt.x86 ? Machine::gem5x86() : Machine::rocket();

    // A trivial user program so the kernel builder has an entry.
    auto ua = opt.x86 ? makeX86Asm(layout::userCodeBase)
                      : makeRiscvAsm(layout::userCodeBase);
    ua->li(ua->regArg(0), 0);
    ua->halt(ua->regArg(0));
    ua->loadInto(p.machine->mem());

    KernelConfig config;
    config.mode = opt.mode;
    config.timer_interval = opt.timer;
    config.per_thread_tstack = opt.tstacks;
    KernelBuilder builder(*p.machine, config);
    p.image = builder.build(layout::userCodeBase);
    p.snap = PolicySnapshot::fromPcu(p.machine->pcu());
    p.initial_domain = 0;
    return p;
}

Prepared
prepareScenario(const Options &opt)
{
    for (const AttackScenario &s : attackScenarios(opt.x86)) {
        if (s.name != opt.attack)
            continue;
        PreparedAttack prepared = prepareAttack(s, opt.x86, true);
        Prepared p;
        p.machine = std::move(prepared.machine);
        p.image = std::move(prepared.image);
        p.snap = PolicySnapshot::fromPcu(p.machine->pcu());
        p.initial_domain = prepared.payload_domain;
        return p;
    }
    fatal("unknown attack scenario '%s' for %s (try --list-attacks)",
          opt.attack.c_str(), opt.x86 ? "x86" : "riscv");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);

    if (opt.list_attacks) {
        for (const AttackScenario &s : attackScenarios(opt.x86))
            std::printf("%s\n", s.name.c_str());
        return 0;
    }

    Prepared p = opt.attack.empty() ? prepareKernel(opt)
                                    : prepareScenario(opt);

    ModelChecker checker(p.machine->isa(), p.machine->mem(), p.snap,
                         p.image.code_regions, p.initial_domain,
                         opt.mc);
    auto t0 = std::chrono::steady_clock::now();
    McResult result = checker.run();
    auto t1 = std::chrono::steady_clock::now();

    std::size_t failed_replays = 0;
    std::string replay_json = "[";
    std::string replay_text;
    if (opt.replay) {
        bool first = true;
        for (const McViolation &f : result.findings) {
            if (f.severity != Severity::Violation)
                continue;
            ReplayResult r = replayTrace(*p.machine, f.trace, p.snap,
                                         p.initial_domain);
            if (!r.ok)
                ++failed_replays;
            if (!first)
                replay_json += ',';
            first = false;
            replay_json += "{\"check\":\"";
            jsonEscape(replay_json, f.check);
            replay_json += "\",\"ok\":";
            replay_json += r.ok ? "true" : "false";
            replay_json += ",\"steps\":" + std::to_string(r.steps_run);
            replay_json += ",\"detail\":\"";
            jsonEscape(replay_json, r.detail);
            replay_json += "\"}";
            replay_text += std::string("replay ") + f.check + ": " +
                           (r.ok ? "confirmed ("
                                 : "MISMATCH (") +
                           std::to_string(r.steps_run) + " steps" +
                           (r.ok ? "" : ", " + r.detail) + ")\n";
        }
    }
    replay_json += "]";

    double secs =
        std::chrono::duration<double>(t1 - t0).count();
    if (opt.json) {
        std::string out = result.json();
        // Graft the replay array into the report object.
        if (opt.replay) {
            out.pop_back(); // trailing '}'
            out += ",\"replays\":" + replay_json + "}";
        }
        std::printf("%s\n", out.c_str());
    } else {
        std::printf("%s", result.text().c_str());
        std::printf("%s", replay_text.c_str());
    }
    if (opt.stats) {
        std::fprintf(stderr,
                     "mc-stats: states=%zu transitions=%zu "
                     "peak_frontier=%zu depth=%u states_per_sec=%.0f\n",
                     result.stats.states, result.stats.transitions,
                     result.stats.peak_frontier,
                     result.stats.depth_reached,
                     secs > 0 ? double(result.stats.states) / secs
                              : 0.0);
    }

    if (failed_replays > 0)
        return 3;
    return failingCount(result.violations(), result.warnings(), 0,
                        opt.fail_on) > 0 ? 1 : 0;
}
