/**
 * @file
 * isagrid-contract — domain noninterference checker: taint-guided
 * self-composition plus a relational strengthening of the model
 * checker, with every PLAUSIBLE static finding discharged or
 * confirmed by a targeted dynamic experiment.
 *
 * Builds a mini-kernel configuration (or one of the attack scenarios)
 * and checks the universal contract — a domain confined to privilege
 * set P observes nothing outside P (docs/contracts.md):
 *
 *   isagrid-contract [options]
 *     --arch=riscv|x86          target prototype       [riscv]
 *     --mode=native|decomposed|nested                  [decomposed]
 *     --timer=N                 timer interrupt period [0 = off]
 *     --tstacks                 per-thread trusted stacks
 *     --attack=NAME             check an attack-scenario image
 *     --list-attacks            print scenario names and exit
 *     --domain=N                only check target domain N
 *     --max-insts=N             reference-run budget   [200000]
 *     --max-windows=N           windows per domain     [32]
 *     --depth=N                 relational depth bound [6]
 *     --max-states=N            relational state cap   [65536]
 *     --static-only             relational checker only
 *     --dynamic-only            self-composition oracle only
 *     --no-memory               do not perturb trusted memory
 *     --no-timing               ignore cycle-count divergence
 *     --fail-on=violation|warning  exit-1 threshold    [violation]
 *     --json                    machine-readable report
 *     --stats                   exploration statistics line
 *
 * Exit status: 0 when the contract holds at the --fail-on threshold,
 * 1 when it does not, 2 on usage errors, 3 when the two checkers
 * disagree — a finding left PLAUSIBLE after a full (static +
 * dynamic) run, which is always a bug in one of the checkers.
 *
 * Examples:
 *   isagrid-contract --arch=x86 --mode=nested --stats
 *   isagrid-contract --attack="Mask-probe side channel" --json
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "attacks/attacks.hh"
#include "contract/contract.hh"
#include "kernel/kernel_builder.hh"
#include "kernel/layout.hh"

using namespace isagrid;

namespace {

struct Options
{
    bool x86 = false;
    KernelMode mode = KernelMode::Decomposed;
    Cycle timer = 0;
    bool tstacks = false;
    std::string attack;
    bool list_attacks = false;
    bool json = false;
    bool stats = false;
    bool fail_on_warning = false;
    ContractOptions contract;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--arch=riscv|x86] "
                 "[--mode=native|decomposed|nested]\n"
                 "  [--timer=N] [--tstacks] [--attack=NAME] "
                 "[--list-attacks]\n"
                 "  [--domain=N] [--max-insts=N] [--max-windows=N]\n"
                 "  [--depth=N] [--max-states=N]\n"
                 "  [--static-only] [--dynamic-only] [--no-memory] "
                 "[--no-timing]\n"
                 "  [--fail-on=violation|warning] [--json] [--stats]\n",
                 argv0);
    std::exit(2);
}

bool
eat(const char *arg, const char *key, std::string &value)
{
    std::size_t len = std::strlen(key);
    if (std::strncmp(arg, key, len) == 0 && arg[len] == '=') {
        value = arg + len + 1;
        return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (eat(argv[i], "--arch", v)) {
            if (v == "x86")
                opt.x86 = true;
            else if (v != "riscv")
                usage(argv[0]);
        } else if (eat(argv[i], "--mode", v)) {
            if (v == "native")
                opt.mode = KernelMode::Monolithic;
            else if (v == "decomposed")
                opt.mode = KernelMode::Decomposed;
            else if (v == "nested")
                opt.mode = KernelMode::NestedMonitor;
            else
                usage(argv[0]);
        } else if (eat(argv[i], "--timer", v)) {
            opt.timer = std::stoull(v);
        } else if (eat(argv[i], "--attack", v)) {
            if (v.empty())
                usage(argv[0]);
            opt.attack = v;
        } else if (eat(argv[i], "--domain", v)) {
            opt.contract.domains.push_back(
                DomainId(std::stoul(v)));
        } else if (eat(argv[i], "--max-insts", v)) {
            opt.contract.max_insts = std::stoull(v);
        } else if (eat(argv[i], "--max-windows", v)) {
            opt.contract.max_windows = std::stoull(v);
        } else if (eat(argv[i], "--depth", v)) {
            opt.contract.depth_bound = unsigned(std::stoul(v));
        } else if (eat(argv[i], "--max-states", v)) {
            opt.contract.max_states = std::stoull(v);
        } else if (eat(argv[i], "--fail-on", v)) {
            if (v == "warning")
                opt.fail_on_warning = true;
            else if (v != "violation")
                usage(argv[0]);
        } else if (std::strcmp(argv[i], "--list-attacks") == 0) {
            opt.list_attacks = true;
        } else if (std::strcmp(argv[i], "--tstacks") == 0) {
            opt.tstacks = true;
        } else if (std::strcmp(argv[i], "--static-only") == 0) {
            opt.contract.run_dynamic = false;
        } else if (std::strcmp(argv[i], "--dynamic-only") == 0) {
            opt.contract.run_static = false;
        } else if (std::strcmp(argv[i], "--no-memory") == 0) {
            opt.contract.perturb_memory = false;
        } else if (std::strcmp(argv[i], "--no-timing") == 0) {
            opt.contract.compare_timing = false;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opt.json = true;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            opt.stats = true;
        } else {
            usage(argv[0]);
        }
    }
    if (!opt.contract.run_static && !opt.contract.run_dynamic)
        usage(argv[0]);
    return opt;
}

ContractScenario
kernelScenario(const Options &opt)
{
    ContractScenario scenario;
    KernelConfig config;
    config.mode = opt.mode;
    config.timer_interval = opt.timer;
    config.per_thread_tstack = opt.tstacks;
    bool x86 = opt.x86;
    scenario.build = [x86, config]() {
        auto machine = x86 ? Machine::gem5x86() : Machine::rocket();
        auto ua = x86 ? makeX86Asm(layout::userCodeBase)
                      : makeRiscvAsm(layout::userCodeBase);
        ua->li(ua->regArg(0), 0);
        ua->halt(ua->regArg(0));
        ua->loadInto(machine->mem());
        KernelBuilder builder(*machine, config);
        builder.build(layout::userCodeBase);
        return machine;
    };
    // Probe build once for the start PC and the code map.
    auto probe = opt.x86 ? Machine::gem5x86() : Machine::rocket();
    auto pa = opt.x86 ? makeX86Asm(layout::userCodeBase)
                      : makeRiscvAsm(layout::userCodeBase);
    pa->li(pa->regArg(0), 0);
    pa->halt(pa->regArg(0));
    pa->loadInto(probe->mem());
    KernelBuilder builder(*probe, config);
    KernelImage image = builder.build(layout::userCodeBase);
    scenario.start_pc = image.boot_pc;
    scenario.code_regions = image.code_regions;
    return scenario;
}

ContractScenario
attackScenario(const Options &opt)
{
    for (const AttackScenario &s : attackScenarios(opt.x86)) {
        if (s.name != opt.attack)
            continue;
        bool x86 = opt.x86;
        ContractScenario scenario;
        scenario.build = [s, x86]() {
            PreparedAttack prepared = prepareAttack(s, x86, true);
            return std::move(prepared.machine);
        };
        PreparedAttack prepared = prepareAttack(s, opt.x86, true);
        scenario.start_pc = prepared.payload_entry;
        scenario.start_domain = prepared.payload_domain;
        scenario.code_regions = prepared.image.code_regions;
        return scenario;
    }
    fatal("unknown attack scenario '%s' for %s (try --list-attacks)",
          opt.attack.c_str(), opt.x86 ? "x86" : "riscv");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);

    if (opt.list_attacks) {
        for (const AttackScenario &s : attackScenarios(opt.x86))
            std::printf("%s\n", s.name.c_str());
        return 0;
    }

    ContractScenario scenario = opt.attack.empty()
                                    ? kernelScenario(opt)
                                    : attackScenario(opt);
    ContractReport report = checkContract(scenario, opt.contract);

    if (opt.json)
        std::printf("%s\n", report.json().c_str());
    else
        std::printf("%s", report.text().c_str());
    if (opt.stats) {
        std::fprintf(stderr,
                     "contract-stats: windows=%llu steps=%llu "
                     "forks=%llu rel_states=%llu rel_transitions=%llu "
                     "discharges=%llu\n",
                     (unsigned long long)report.stats.windows,
                     (unsigned long long)report.stats.steps_compared,
                     (unsigned long long)report.stats.forks,
                     (unsigned long long)report.stats.rel_states,
                     (unsigned long long)report.stats.rel_transitions,
                     (unsigned long long)report.stats.discharges);
    }

    // A full run must leave nothing PLAUSIBLE: every static finding
    // is either discharged or dynamically confirmed. A leftover means
    // the checkers disagree — a bug in one of them.
    if (opt.contract.run_static && opt.contract.run_dynamic &&
        report.plausible() > 0)
        return 3;

    std::size_t failing = report.violations() +
                          (opt.fail_on_warning ? report.warnings() : 0);
    return failing > 0 ? 1 : 0;
}
