# Empty compiler generated dependencies file for bench_fig6_apps_riscv.
# This may be replaced when dependencies are built.
