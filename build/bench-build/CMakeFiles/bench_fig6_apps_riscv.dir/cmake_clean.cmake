file(REMOVE_RECURSE
  "../bench/bench_fig6_apps_riscv"
  "../bench/bench_fig6_apps_riscv.pdb"
  "CMakeFiles/bench_fig6_apps_riscv.dir/bench_fig6_apps_riscv.cc.o"
  "CMakeFiles/bench_fig6_apps_riscv.dir/bench_fig6_apps_riscv.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_apps_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
