file(REMOVE_RECURSE
  "../bench/bench_table1_attacks"
  "../bench/bench_table1_attacks.pdb"
  "CMakeFiles/bench_table1_attacks.dir/bench_table1_attacks.cc.o"
  "CMakeFiles/bench_table1_attacks.dir/bench_table1_attacks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
