# Empty dependencies file for bench_pcu_micro.
# This may be replaced when dependencies are built.
