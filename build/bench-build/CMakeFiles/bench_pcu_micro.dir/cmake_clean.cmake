file(REMOVE_RECURSE
  "../bench/bench_pcu_micro"
  "../bench/bench_pcu_micro.pdb"
  "CMakeFiles/bench_pcu_micro.dir/bench_pcu_micro.cc.o"
  "CMakeFiles/bench_pcu_micro.dir/bench_pcu_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pcu_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
