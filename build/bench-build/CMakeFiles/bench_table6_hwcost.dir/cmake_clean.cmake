file(REMOVE_RECURSE
  "../bench/bench_table6_hwcost"
  "../bench/bench_table6_hwcost.pdb"
  "CMakeFiles/bench_table6_hwcost.dir/bench_table6_hwcost.cc.o"
  "CMakeFiles/bench_table6_hwcost.dir/bench_table6_hwcost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
