# Empty dependencies file for bench_table6_hwcost.
# This may be replaced when dependencies are built.
