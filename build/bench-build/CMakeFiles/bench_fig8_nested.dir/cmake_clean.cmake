file(REMOVE_RECURSE
  "../bench/bench_fig8_nested"
  "../bench/bench_fig8_nested.pdb"
  "CMakeFiles/bench_fig8_nested.dir/bench_fig8_nested.cc.o"
  "CMakeFiles/bench_fig8_nested.dir/bench_fig8_nested.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
