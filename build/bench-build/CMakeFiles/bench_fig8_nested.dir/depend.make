# Empty dependencies file for bench_fig8_nested.
# This may be replaced when dependencies are built.
