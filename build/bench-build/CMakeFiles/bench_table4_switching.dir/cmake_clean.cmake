file(REMOVE_RECURSE
  "../bench/bench_table4_switching"
  "../bench/bench_table4_switching.pdb"
  "CMakeFiles/bench_table4_switching.dir/bench_table4_switching.cc.o"
  "CMakeFiles/bench_table4_switching.dir/bench_table4_switching.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
