file(REMOVE_RECURSE
  "../bench/bench_fig5_lmbench"
  "../bench/bench_fig5_lmbench.pdb"
  "CMakeFiles/bench_fig5_lmbench.dir/bench_fig5_lmbench.cc.o"
  "CMakeFiles/bench_fig5_lmbench.dir/bench_fig5_lmbench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lmbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
