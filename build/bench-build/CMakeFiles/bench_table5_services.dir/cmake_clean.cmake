file(REMOVE_RECURSE
  "../bench/bench_table5_services"
  "../bench/bench_table5_services.pdb"
  "CMakeFiles/bench_table5_services.dir/bench_table5_services.cc.o"
  "CMakeFiles/bench_table5_services.dir/bench_table5_services.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
