# Empty dependencies file for bench_table5_services.
# This may be replaced when dependencies are built.
