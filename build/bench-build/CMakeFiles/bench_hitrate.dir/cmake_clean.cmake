file(REMOVE_RECURSE
  "../bench/bench_hitrate"
  "../bench/bench_hitrate.pdb"
  "CMakeFiles/bench_hitrate.dir/bench_hitrate.cc.o"
  "CMakeFiles/bench_hitrate.dir/bench_hitrate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
