file(REMOVE_RECURSE
  "../bench/bench_fig7_apps_x86"
  "../bench/bench_fig7_apps_x86.pdb"
  "CMakeFiles/bench_fig7_apps_x86.dir/bench_fig7_apps_x86.cc.o"
  "CMakeFiles/bench_fig7_apps_x86.dir/bench_fig7_apps_x86.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_apps_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
