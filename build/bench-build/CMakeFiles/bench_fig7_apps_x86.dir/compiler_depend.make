# Empty compiler generated dependencies file for bench_fig7_apps_x86.
# This may be replaced when dependencies are built.
