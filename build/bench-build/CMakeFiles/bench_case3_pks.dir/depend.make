# Empty dependencies file for bench_case3_pks.
# This may be replaced when dependencies are built.
