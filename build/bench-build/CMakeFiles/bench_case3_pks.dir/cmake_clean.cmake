file(REMOVE_RECURSE
  "../bench/bench_case3_pks"
  "../bench/bench_case3_pks.pdb"
  "CMakeFiles/bench_case3_pks.dir/bench_case3_pks.cc.o"
  "CMakeFiles/bench_case3_pks.dir/bench_case3_pks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case3_pks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
