# Empty dependencies file for isagrid-sim.
# This may be replaced when dependencies are built.
