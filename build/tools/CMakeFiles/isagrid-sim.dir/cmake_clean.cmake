file(REMOVE_RECURSE
  "CMakeFiles/isagrid-sim.dir/isagrid_sim.cc.o"
  "CMakeFiles/isagrid-sim.dir/isagrid_sim.cc.o.d"
  "isagrid-sim"
  "isagrid-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isagrid-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
