# Empty dependencies file for test_pcu_scale.
# This may be replaced when dependencies are built.
