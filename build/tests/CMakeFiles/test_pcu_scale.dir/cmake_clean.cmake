file(REMOVE_RECURSE
  "CMakeFiles/test_pcu_scale.dir/test_pcu_scale.cc.o"
  "CMakeFiles/test_pcu_scale.dir/test_pcu_scale.cc.o.d"
  "test_pcu_scale"
  "test_pcu_scale.pdb"
  "test_pcu_scale[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcu_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
