file(REMOVE_RECURSE
  "CMakeFiles/test_x86_isa.dir/test_x86_isa.cc.o"
  "CMakeFiles/test_x86_isa.dir/test_x86_isa.cc.o.d"
  "test_x86_isa"
  "test_x86_isa.pdb"
  "test_x86_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_x86_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
