# Empty dependencies file for test_x86_isa.
# This may be replaced when dependencies are built.
