file(REMOVE_RECURSE
  "CMakeFiles/test_hwcost.dir/test_hwcost.cc.o"
  "CMakeFiles/test_hwcost.dir/test_hwcost.cc.o.d"
  "test_hwcost"
  "test_hwcost.pdb"
  "test_hwcost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
