file(REMOVE_RECURSE
  "CMakeFiles/test_asm_iface.dir/test_asm_iface.cc.o"
  "CMakeFiles/test_asm_iface.dir/test_asm_iface.cc.o.d"
  "test_asm_iface"
  "test_asm_iface.pdb"
  "test_asm_iface[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asm_iface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
