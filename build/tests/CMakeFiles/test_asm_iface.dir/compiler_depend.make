# Empty compiler generated dependencies file for test_asm_iface.
# This may be replaced when dependencies are built.
