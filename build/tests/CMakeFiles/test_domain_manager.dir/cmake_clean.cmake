file(REMOVE_RECURSE
  "CMakeFiles/test_domain_manager.dir/test_domain_manager.cc.o"
  "CMakeFiles/test_domain_manager.dir/test_domain_manager.cc.o.d"
  "test_domain_manager"
  "test_domain_manager.pdb"
  "test_domain_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_domain_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
