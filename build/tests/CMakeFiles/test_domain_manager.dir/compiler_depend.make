# Empty compiler generated dependencies file for test_domain_manager.
# This may be replaced when dependencies are built.
