file(REMOVE_RECURSE
  "CMakeFiles/test_syscalls.dir/test_syscalls.cc.o"
  "CMakeFiles/test_syscalls.dir/test_syscalls.cc.o.d"
  "test_syscalls"
  "test_syscalls.pdb"
  "test_syscalls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
