# Empty dependencies file for test_riscv_isa.
# This may be replaced when dependencies are built.
