file(REMOVE_RECURSE
  "CMakeFiles/test_riscv_isa.dir/test_riscv_isa.cc.o"
  "CMakeFiles/test_riscv_isa.dir/test_riscv_isa.cc.o.d"
  "test_riscv_isa"
  "test_riscv_isa.pdb"
  "test_riscv_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_riscv_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
