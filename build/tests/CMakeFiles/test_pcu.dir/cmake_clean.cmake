file(REMOVE_RECURSE
  "CMakeFiles/test_pcu.dir/test_pcu.cc.o"
  "CMakeFiles/test_pcu.dir/test_pcu.cc.o.d"
  "test_pcu"
  "test_pcu.pdb"
  "test_pcu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
