# Empty compiler generated dependencies file for test_pcu.
# This may be replaced when dependencies are built.
