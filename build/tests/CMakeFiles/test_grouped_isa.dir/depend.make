# Empty dependencies file for test_grouped_isa.
# This may be replaced when dependencies are built.
