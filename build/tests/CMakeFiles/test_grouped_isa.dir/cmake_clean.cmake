file(REMOVE_RECURSE
  "CMakeFiles/test_grouped_isa.dir/test_grouped_isa.cc.o"
  "CMakeFiles/test_grouped_isa.dir/test_grouped_isa.cc.o.d"
  "test_grouped_isa"
  "test_grouped_isa.pdb"
  "test_grouped_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grouped_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
