
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_grouped_isa.cc" "tests/CMakeFiles/test_grouped_isa.dir/test_grouped_isa.cc.o" "gcc" "tests/CMakeFiles/test_grouped_isa.dir/test_grouped_isa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/isagrid_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isagrid/CMakeFiles/isagrid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/isagrid_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/isagrid_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/isagrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/isagrid_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/isagrid_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/isagrid_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcost/CMakeFiles/isagrid_hwcost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
