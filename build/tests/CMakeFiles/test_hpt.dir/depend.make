# Empty dependencies file for test_hpt.
# This may be replaced when dependencies are built.
