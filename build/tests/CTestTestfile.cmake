# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_attacks[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_riscv_isa[1]_include.cmake")
include("/root/repo/build/tests/test_x86_isa[1]_include.cmake")
include("/root/repo/build/tests/test_hpt[1]_include.cmake")
include("/root/repo/build/tests/test_pcu[1]_include.cmake")
include("/root/repo/build/tests/test_gates[1]_include.cmake")
include("/root/repo/build/tests/test_cores[1]_include.cmake")
include("/root/repo/build/tests/test_domain_manager[1]_include.cmake")
include("/root/repo/build/tests/test_hwcost[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_grouped_isa[1]_include.cmake")
include("/root/repo/build/tests/test_asm_iface[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_syscalls[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_pcu_scale[1]_include.cmake")
include("/root/repo/build/tests/test_disasm[1]_include.cmake")
