file(REMOVE_RECURSE
  "libisagrid_cpu.a"
)
