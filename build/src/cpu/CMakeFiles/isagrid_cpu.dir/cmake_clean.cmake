file(REMOVE_RECURSE
  "CMakeFiles/isagrid_cpu.dir/core.cc.o"
  "CMakeFiles/isagrid_cpu.dir/core.cc.o.d"
  "CMakeFiles/isagrid_cpu.dir/inorder/inorder_core.cc.o"
  "CMakeFiles/isagrid_cpu.dir/inorder/inorder_core.cc.o.d"
  "CMakeFiles/isagrid_cpu.dir/machine.cc.o"
  "CMakeFiles/isagrid_cpu.dir/machine.cc.o.d"
  "CMakeFiles/isagrid_cpu.dir/o3/o3_core.cc.o"
  "CMakeFiles/isagrid_cpu.dir/o3/o3_core.cc.o.d"
  "libisagrid_cpu.a"
  "libisagrid_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isagrid_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
