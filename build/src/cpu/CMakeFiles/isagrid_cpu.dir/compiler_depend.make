# Empty compiler generated dependencies file for isagrid_cpu.
# This may be replaced when dependencies are built.
