
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/core.cc" "src/cpu/CMakeFiles/isagrid_cpu.dir/core.cc.o" "gcc" "src/cpu/CMakeFiles/isagrid_cpu.dir/core.cc.o.d"
  "/root/repo/src/cpu/inorder/inorder_core.cc" "src/cpu/CMakeFiles/isagrid_cpu.dir/inorder/inorder_core.cc.o" "gcc" "src/cpu/CMakeFiles/isagrid_cpu.dir/inorder/inorder_core.cc.o.d"
  "/root/repo/src/cpu/machine.cc" "src/cpu/CMakeFiles/isagrid_cpu.dir/machine.cc.o" "gcc" "src/cpu/CMakeFiles/isagrid_cpu.dir/machine.cc.o.d"
  "/root/repo/src/cpu/o3/o3_core.cc" "src/cpu/CMakeFiles/isagrid_cpu.dir/o3/o3_core.cc.o" "gcc" "src/cpu/CMakeFiles/isagrid_cpu.dir/o3/o3_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isagrid/CMakeFiles/isagrid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/isagrid_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/isagrid_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/isagrid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
