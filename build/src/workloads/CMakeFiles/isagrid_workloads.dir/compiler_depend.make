# Empty compiler generated dependencies file for isagrid_workloads.
# This may be replaced when dependencies are built.
