file(REMOVE_RECURSE
  "libisagrid_workloads.a"
)
