file(REMOVE_RECURSE
  "CMakeFiles/isagrid_workloads.dir/apps.cc.o"
  "CMakeFiles/isagrid_workloads.dir/apps.cc.o.d"
  "CMakeFiles/isagrid_workloads.dir/lmbench.cc.o"
  "CMakeFiles/isagrid_workloads.dir/lmbench.cc.o.d"
  "libisagrid_workloads.a"
  "libisagrid_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isagrid_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
