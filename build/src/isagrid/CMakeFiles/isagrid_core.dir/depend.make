# Empty dependencies file for isagrid_core.
# This may be replaced when dependencies are built.
