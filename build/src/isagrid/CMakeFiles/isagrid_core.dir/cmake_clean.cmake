file(REMOVE_RECURSE
  "CMakeFiles/isagrid_core.dir/domain_manager.cc.o"
  "CMakeFiles/isagrid_core.dir/domain_manager.cc.o.d"
  "CMakeFiles/isagrid_core.dir/grouped_isa.cc.o"
  "CMakeFiles/isagrid_core.dir/grouped_isa.cc.o.d"
  "CMakeFiles/isagrid_core.dir/pcu.cc.o"
  "CMakeFiles/isagrid_core.dir/pcu.cc.o.d"
  "libisagrid_core.a"
  "libisagrid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isagrid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
