file(REMOVE_RECURSE
  "libisagrid_core.a"
)
