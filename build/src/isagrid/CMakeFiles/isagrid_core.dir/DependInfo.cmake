
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isagrid/domain_manager.cc" "src/isagrid/CMakeFiles/isagrid_core.dir/domain_manager.cc.o" "gcc" "src/isagrid/CMakeFiles/isagrid_core.dir/domain_manager.cc.o.d"
  "/root/repo/src/isagrid/grouped_isa.cc" "src/isagrid/CMakeFiles/isagrid_core.dir/grouped_isa.cc.o" "gcc" "src/isagrid/CMakeFiles/isagrid_core.dir/grouped_isa.cc.o.d"
  "/root/repo/src/isagrid/pcu.cc" "src/isagrid/CMakeFiles/isagrid_core.dir/pcu.cc.o" "gcc" "src/isagrid/CMakeFiles/isagrid_core.dir/pcu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/isagrid_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/isagrid_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/isagrid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
