file(REMOVE_RECURSE
  "libisagrid_isa.a"
)
