
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/disasm.cc" "src/isa/CMakeFiles/isagrid_isa.dir/disasm.cc.o" "gcc" "src/isa/CMakeFiles/isagrid_isa.dir/disasm.cc.o.d"
  "/root/repo/src/isa/inst.cc" "src/isa/CMakeFiles/isagrid_isa.dir/inst.cc.o" "gcc" "src/isa/CMakeFiles/isagrid_isa.dir/inst.cc.o.d"
  "/root/repo/src/isa/riscv/assembler.cc" "src/isa/CMakeFiles/isagrid_isa.dir/riscv/assembler.cc.o" "gcc" "src/isa/CMakeFiles/isagrid_isa.dir/riscv/assembler.cc.o.d"
  "/root/repo/src/isa/riscv/riscv_isa.cc" "src/isa/CMakeFiles/isagrid_isa.dir/riscv/riscv_isa.cc.o" "gcc" "src/isa/CMakeFiles/isagrid_isa.dir/riscv/riscv_isa.cc.o.d"
  "/root/repo/src/isa/x86/assembler.cc" "src/isa/CMakeFiles/isagrid_isa.dir/x86/assembler.cc.o" "gcc" "src/isa/CMakeFiles/isagrid_isa.dir/x86/assembler.cc.o.d"
  "/root/repo/src/isa/x86/x86_isa.cc" "src/isa/CMakeFiles/isagrid_isa.dir/x86/x86_isa.cc.o" "gcc" "src/isa/CMakeFiles/isagrid_isa.dir/x86/x86_isa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/isagrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/isagrid_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
