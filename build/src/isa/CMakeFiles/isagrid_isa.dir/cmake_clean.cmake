file(REMOVE_RECURSE
  "CMakeFiles/isagrid_isa.dir/disasm.cc.o"
  "CMakeFiles/isagrid_isa.dir/disasm.cc.o.d"
  "CMakeFiles/isagrid_isa.dir/inst.cc.o"
  "CMakeFiles/isagrid_isa.dir/inst.cc.o.d"
  "CMakeFiles/isagrid_isa.dir/riscv/assembler.cc.o"
  "CMakeFiles/isagrid_isa.dir/riscv/assembler.cc.o.d"
  "CMakeFiles/isagrid_isa.dir/riscv/riscv_isa.cc.o"
  "CMakeFiles/isagrid_isa.dir/riscv/riscv_isa.cc.o.d"
  "CMakeFiles/isagrid_isa.dir/x86/assembler.cc.o"
  "CMakeFiles/isagrid_isa.dir/x86/assembler.cc.o.d"
  "CMakeFiles/isagrid_isa.dir/x86/x86_isa.cc.o"
  "CMakeFiles/isagrid_isa.dir/x86/x86_isa.cc.o.d"
  "libisagrid_isa.a"
  "libisagrid_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isagrid_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
