# Empty compiler generated dependencies file for isagrid_isa.
# This may be replaced when dependencies are built.
