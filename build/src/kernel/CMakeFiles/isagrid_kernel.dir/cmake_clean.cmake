file(REMOVE_RECURSE
  "CMakeFiles/isagrid_kernel.dir/asm_iface.cc.o"
  "CMakeFiles/isagrid_kernel.dir/asm_iface.cc.o.d"
  "CMakeFiles/isagrid_kernel.dir/kernel_builder.cc.o"
  "CMakeFiles/isagrid_kernel.dir/kernel_builder.cc.o.d"
  "libisagrid_kernel.a"
  "libisagrid_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isagrid_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
