# Empty dependencies file for isagrid_kernel.
# This may be replaced when dependencies are built.
