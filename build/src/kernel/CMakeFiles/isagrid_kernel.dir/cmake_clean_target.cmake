file(REMOVE_RECURSE
  "libisagrid_kernel.a"
)
