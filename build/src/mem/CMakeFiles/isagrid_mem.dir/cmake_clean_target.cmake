file(REMOVE_RECURSE
  "libisagrid_mem.a"
)
