file(REMOVE_RECURSE
  "CMakeFiles/isagrid_mem.dir/cache.cc.o"
  "CMakeFiles/isagrid_mem.dir/cache.cc.o.d"
  "libisagrid_mem.a"
  "libisagrid_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isagrid_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
