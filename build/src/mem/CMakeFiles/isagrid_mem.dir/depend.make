# Empty dependencies file for isagrid_mem.
# This may be replaced when dependencies are built.
