file(REMOVE_RECURSE
  "CMakeFiles/isagrid_sim.dir/logging.cc.o"
  "CMakeFiles/isagrid_sim.dir/logging.cc.o.d"
  "CMakeFiles/isagrid_sim.dir/stats.cc.o"
  "CMakeFiles/isagrid_sim.dir/stats.cc.o.d"
  "libisagrid_sim.a"
  "libisagrid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isagrid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
