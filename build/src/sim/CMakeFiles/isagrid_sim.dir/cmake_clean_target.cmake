file(REMOVE_RECURSE
  "libisagrid_sim.a"
)
