# Empty compiler generated dependencies file for isagrid_sim.
# This may be replaced when dependencies are built.
