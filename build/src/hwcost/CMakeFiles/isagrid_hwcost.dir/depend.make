# Empty dependencies file for isagrid_hwcost.
# This may be replaced when dependencies are built.
