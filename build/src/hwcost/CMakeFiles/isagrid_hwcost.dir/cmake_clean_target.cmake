file(REMOVE_RECURSE
  "libisagrid_hwcost.a"
)
