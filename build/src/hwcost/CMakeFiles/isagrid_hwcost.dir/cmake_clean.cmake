file(REMOVE_RECURSE
  "CMakeFiles/isagrid_hwcost.dir/hwcost.cc.o"
  "CMakeFiles/isagrid_hwcost.dir/hwcost.cc.o.d"
  "libisagrid_hwcost.a"
  "libisagrid_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isagrid_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
