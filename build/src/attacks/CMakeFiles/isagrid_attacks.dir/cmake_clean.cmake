file(REMOVE_RECURSE
  "CMakeFiles/isagrid_attacks.dir/attacks.cc.o"
  "CMakeFiles/isagrid_attacks.dir/attacks.cc.o.d"
  "libisagrid_attacks.a"
  "libisagrid_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isagrid_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
