# Empty compiler generated dependencies file for isagrid_attacks.
# This may be replaced when dependencies are built.
