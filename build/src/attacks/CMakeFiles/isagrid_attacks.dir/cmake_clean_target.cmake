file(REMOVE_RECURSE
  "libisagrid_attacks.a"
)
