
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/attacks.cc" "src/attacks/CMakeFiles/isagrid_attacks.dir/attacks.cc.o" "gcc" "src/attacks/CMakeFiles/isagrid_attacks.dir/attacks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/isagrid_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/isagrid_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isagrid/CMakeFiles/isagrid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/isagrid_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/isagrid_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/isagrid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
