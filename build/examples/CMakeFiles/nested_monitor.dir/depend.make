# Empty dependencies file for nested_monitor.
# This may be replaced when dependencies are built.
