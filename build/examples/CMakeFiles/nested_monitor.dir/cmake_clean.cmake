file(REMOVE_RECURSE
  "CMakeFiles/nested_monitor.dir/nested_monitor.cpp.o"
  "CMakeFiles/nested_monitor.dir/nested_monitor.cpp.o.d"
  "nested_monitor"
  "nested_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
