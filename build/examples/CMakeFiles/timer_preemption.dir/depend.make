# Empty dependencies file for timer_preemption.
# This may be replaced when dependencies are built.
