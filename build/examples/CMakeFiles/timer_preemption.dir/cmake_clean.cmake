file(REMOVE_RECURSE
  "CMakeFiles/timer_preemption.dir/timer_preemption.cpp.o"
  "CMakeFiles/timer_preemption.dir/timer_preemption.cpp.o.d"
  "timer_preemption"
  "timer_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timer_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
