# Empty compiler generated dependencies file for kernel_decomposition.
# This may be replaced when dependencies are built.
