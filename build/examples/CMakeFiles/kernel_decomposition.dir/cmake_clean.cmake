file(REMOVE_RECURSE
  "CMakeFiles/kernel_decomposition.dir/kernel_decomposition.cpp.o"
  "CMakeFiles/kernel_decomposition.dir/kernel_decomposition.cpp.o.d"
  "kernel_decomposition"
  "kernel_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
