# Empty dependencies file for pks_trampoline.
# This may be replaced when dependencies are built.
