file(REMOVE_RECURSE
  "CMakeFiles/pks_trampoline.dir/pks_trampoline.cpp.o"
  "CMakeFiles/pks_trampoline.dir/pks_trampoline.cpp.o.d"
  "pks_trampoline"
  "pks_trampoline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pks_trampoline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
