/**
 * @file
 * Smoke benchmark of the superset-disassembly audit (isagrid-xscan):
 * static-scan latency over every kernel mode on both prototypes, with
 * the per-thread trusted-stack variant as the largest image.
 *
 * The audit is meant to run on every CI build, so the property gated
 * here is interactivity: the superset scan of the largest built image
 * must finish well under five seconds in a Release build (the issue's
 * acceptance bound). Offsets/second gives the scaling headroom.
 */

#include <chrono>

#include "bench_common.hh"
#include "kernel/layout.hh"
#include "verify/superset.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

struct Case
{
    const char *name;
    bool x86;
    KernelMode mode;
    bool tstacks;
};

XscanReport
scan(bool x86, KernelMode mode, bool tstacks, double &secs)
{
    auto machine = x86 ? Machine::gem5x86() : Machine::rocket();
    auto ua = x86 ? makeX86Asm(layout::userCodeBase)
                  : makeRiscvAsm(layout::userCodeBase);
    ua->li(ua->regArg(0), 0);
    ua->halt(ua->regArg(0));
    ua->loadInto(machine->mem());

    KernelConfig config;
    config.mode = mode;
    config.per_thread_tstack = tstacks;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(layout::userCodeBase);

    PolicySnapshot snap = PolicySnapshot::fromPcu(machine->pcu());
    std::vector<Addr> entries = {image.boot_pc, image.trap_entry};
    auto t0 = std::chrono::steady_clock::now();
    XscanReport report =
        scanSuperset(machine->isa(), machine->mem(), snap,
                     image.code_regions, entries);
    auto t1 = std::chrono::steady_clock::now();
    secs = std::chrono::duration<double>(t1 - t0).count();
    return report;
}

} // namespace

int
main()
{
    heading("isagrid-xscan superset-scan latency");

    const Case cases[] = {
        {"riscv/native", false, KernelMode::Monolithic, false},
        {"riscv/decomposed", false, KernelMode::Decomposed, false},
        {"riscv/nested", false, KernelMode::NestedMonitor, false},
        {"x86/native", true, KernelMode::Monolithic, false},
        {"x86/decomposed", true, KernelMode::Decomposed, false},
        {"x86/nested", true, KernelMode::NestedMonitor, false},
        {"x86/nested+tstacks", true, KernelMode::NestedMonitor, true},
    };

    Table table({"config", "regions", "offsets", "reachable",
                 "misaligned", "scan ms", "offsets/sec", "violations"});
    for (const Case &c : cases) {
        double secs = 0;
        XscanReport r = scan(c.x86, c.mode, c.tstacks, secs);
        table.row({c.name, std::to_string(r.stats.regions),
                   std::to_string(r.stats.offsets_scanned),
                   std::to_string(r.stats.reachable),
                   std::to_string(r.stats.reachable_misaligned),
                   fmt(secs * 1e3, 2),
                   secs > 0
                       ? fmt(double(r.stats.offsets_scanned) / secs, 0)
                       : "-",
                   std::to_string(r.violations())});
        // Smoke properties: stock images audit clean, and the scan
        // stays interactive (the 5 s acceptance bound, with margin
        // left for slow CI runners; enforced in optimized builds
        // only).
        if (r.violations() != 0 || r.warnings() != 0)
            fatal("%s: unexpected findings", c.name);
#ifdef NDEBUG
        if (secs > 5.0)
            fatal("%s: superset scan took %.2f s (budget 5 s)", c.name,
                  secs);
#endif
    }
    table.print();
    return 0;
}
