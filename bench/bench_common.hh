/**
 * @file
 * Shared helpers for the benchmark binaries: table rendering, the
 * measured-loop harness used by the microbenchmarks, and the scenario
 * registry consumed by the parallel bench runner (tools/isagrid_bench).
 */

#ifndef ISAGRID_BENCH_BENCH_COMMON_HH_
#define ISAGRID_BENCH_BENCH_COMMON_HH_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "cpu/machine.hh"
#include "kernel/asm_iface.hh"
#include "kernel/kernel_builder.hh"
#include "workloads/apps.hh"
#include "workloads/lmbench.hh"

namespace isagrid {
namespace bench {

// ---------------------------------------------------------------------
// Scenario registry (parallel bench runner)
// ---------------------------------------------------------------------

/**
 * Per-run knobs every registered scenario must honour. Scenarios are
 * otherwise self-contained: each run() builds its own Machine(s), so
 * any number of scenarios can execute on concurrent threads.
 */
struct ScenarioOptions
{
    /** Host-side decoded-instruction cache size (0 disables). */
    std::uint32_t decode_cache_entries =
        MachineConfig{}.decode_cache_entries;
    /** Run hot blocks through the block-translation engine. */
    bool block_engine = false;
    std::uint32_t block_hot_threshold =
        BlockEngine::kDefaultHotThreshold;
    /**
     * When non-empty, the scenario enables the performance monitor
     * (sim/metrics.hh) on its machine and writes the metrics JSON
     * document to this path after the run. Honoured by the
     * single-machine scenarios (fig5 lmbench, table4 switching); the
     * multi-machine ones (apps, attacks) have no single series to
     * export and ignore it. The runner only sets this on untimed
     * extra runs, so the timed numbers never include sampling cost.
     */
    std::string metrics_out;
};

/** What one scenario run simulated (totals across all its runs). */
struct ScenarioResult
{
    std::uint64_t guest_cycles = 0;
    std::uint64_t guest_instructions = 0;
};

/** One registered, independently runnable benchmark scenario. */
struct Scenario
{
    std::string group; //!< BENCH_<group>.json bucket (fig5, table4, ...)
    std::string name;  //!< unique within the group
    std::function<ScenarioResult(const ScenarioOptions &)> run;
};

/** Every registered scenario (defined in bench_scenarios.cc). */
std::vector<Scenario> allScenarios();

// ---------------------------------------------------------------------
// Table rendering / formatting
// ---------------------------------------------------------------------

/** Print a separator + heading. */
inline void
heading(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Echo the simulated x86 configuration (the paper's Table 3). */
inline void
printTable3()
{
    std::printf(
        "simulated x86 (Table 3): 8-wide fetch/decode/issue/commit, "
        "192-entry ROB, 32/32 LQ/SQ,\n  L1 I/D 32KB 4-way 2c, "
        "L2 256KB 16-way 20c, L3 2MB 16-way 32c, DRAM 150c "
        "(~30ns)\n");
}

/** A fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> columns)
        : cols(std::move(columns))
    {
    }

    void
    row(std::vector<std::string> cells)
    {
        rows.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> widths(cols.size());
        for (std::size_t c = 0; c < cols.size(); ++c)
            widths[c] = cols[c].size();
        for (const auto &r : rows)
            for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], r[c].size());
        auto line = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < cols.size(); ++c) {
                std::printf("%-*s  ", int(widths[c]),
                            c < cells.size() ? cells[c].c_str() : "");
            }
            std::printf("\n");
        };
        line(cols);
        std::string sep;
        for (std::size_t c = 0; c < cols.size(); ++c)
            sep += std::string(widths[c], '-') + "  ";
        std::printf("%s\n", sep.c_str());
        for (const auto &r : rows)
            line(r);
    }

  private:
    std::vector<std::string> cols;
    std::vector<std::vector<std::string>> rows;
};

inline std::string
fmt(double v, int prec = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
}

inline std::string
fmtPercent(double v, int prec = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", prec, v);
    return buf;
}

/**
 * Build a decomposed (or other mode) kernel + an application profile
 * and return the ROI cycle count.
 */
inline Cycle
runAppOnKernel(bool x86, const AppProfile &profile, KernelConfig config,
               PcuConfig pcu, Machine **machine_out = nullptr,
               std::unique_ptr<Machine> *keep = nullptr,
               const MachineConfig *base = nullptr)
{
    MachineConfig mc = base ? *base : MachineConfig{};
    mc.pcu = pcu;
    auto machine = x86 ? Machine::gem5x86(mc) : Machine::rocket(mc);
    Addr entry = buildApp(*machine, profile);
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(entry);
    RunResult r = machine->run(image.boot_pc, 500'000'000);
    if (r.reason != StopReason::Halted) {
        fatal("app %s did not halt: %s", profile.name.c_str(),
              faultName(r.fault));
    }
    Cycle cycles = appRoiCycles(machine->core());
    if (machine_out)
        *machine_out = machine.get();
    if (keep)
        *keep = std::move(machine);
    return cycles;
}

} // namespace bench
} // namespace isagrid

#endif // ISAGRID_BENCH_BENCH_COMMON_HH_
