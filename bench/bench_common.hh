/**
 * @file
 * Shared helpers for the benchmark binaries: table rendering and the
 * measured-loop harness used by the microbenchmarks.
 */

#ifndef ISAGRID_BENCH_BENCH_COMMON_HH_
#define ISAGRID_BENCH_BENCH_COMMON_HH_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "cpu/machine.hh"
#include "kernel/asm_iface.hh"
#include "kernel/kernel_builder.hh"
#include "workloads/apps.hh"
#include "workloads/lmbench.hh"

namespace isagrid {
namespace bench {

/** Print a separator + heading. */
inline void
heading(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Echo the simulated x86 configuration (the paper's Table 3). */
inline void
printTable3()
{
    std::printf(
        "simulated x86 (Table 3): 8-wide fetch/decode/issue/commit, "
        "192-entry ROB, 32/32 LQ/SQ,\n  L1 I/D 32KB 4-way 2c, "
        "L2 256KB 16-way 20c, L3 2MB 16-way 32c, DRAM 150c "
        "(~30ns)\n");
}

/** A fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> columns)
        : cols(std::move(columns))
    {
    }

    void
    row(std::vector<std::string> cells)
    {
        rows.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> widths(cols.size());
        for (std::size_t c = 0; c < cols.size(); ++c)
            widths[c] = cols[c].size();
        for (const auto &r : rows)
            for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], r[c].size());
        auto line = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < cols.size(); ++c) {
                std::printf("%-*s  ", int(widths[c]),
                            c < cells.size() ? cells[c].c_str() : "");
            }
            std::printf("\n");
        };
        line(cols);
        std::string sep;
        for (std::size_t c = 0; c < cols.size(); ++c)
            sep += std::string(widths[c], '-') + "  ";
        std::printf("%s\n", sep.c_str());
        for (const auto &r : rows)
            line(r);
    }

  private:
    std::vector<std::string> cols;
    std::vector<std::vector<std::string>> rows;
};

inline std::string
fmt(double v, int prec = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
}

inline std::string
fmtPercent(double v, int prec = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", prec, v);
    return buf;
}

/**
 * Build a decomposed (or other mode) kernel + an application profile
 * and return the ROI cycle count.
 */
inline Cycle
runAppOnKernel(bool x86, const AppProfile &profile, KernelConfig config,
               PcuConfig pcu, Machine **machine_out = nullptr,
               std::unique_ptr<Machine> *keep = nullptr)
{
    MachineConfig mc;
    mc.pcu = pcu;
    auto machine = x86 ? Machine::gem5x86(mc) : Machine::rocket(mc);
    Addr entry = buildApp(*machine, profile);
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(entry);
    RunResult r = machine->run(image.boot_pc, 500'000'000);
    if (r.reason != StopReason::Halted) {
        fatal("app %s did not halt: %s", profile.name.c_str(),
              faultName(r.fault));
    }
    Cycle cycles = appRoiCycles(machine->core());
    if (machine_out)
        *machine_out = machine.get();
    if (keep)
        *keep = std::move(machine);
    return cycles;
}

} // namespace bench
} // namespace isagrid

#endif // ISAGRID_BENCH_BENCH_COMMON_HH_
