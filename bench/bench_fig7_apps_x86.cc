/**
 * @file
 * Figure 7 reproduction: normalized execution time of the application
 * workloads with the decomposed kernel on x86 (16E./8E./8E.N).
 */

#include "bench_common.hh"

using namespace isagrid;
using namespace isagrid::bench;

int
main()
{
    printTable3();
    heading("Figure 7: application normalized execution time, "
            "x86 kernel decomposition");

    struct Config
    {
        const char *name;
        PcuConfig pcu;
    } configs[] = {
        {"16E.", PcuConfig::config16E()},
        {"8E.", PcuConfig::config8E()},
        {"8E.N", PcuConfig::config8EN()},
    };

    Table t({"app", "native (cycles)", "16E.", "8E.", "8E.N"});
    double worst = 1.0;
    for (const AppProfile &profile : AppProfile::all()) {
        KernelConfig native_cfg;
        native_cfg.mode = KernelMode::Monolithic;
        Cycle native = runAppOnKernel(true, profile, native_cfg,
                                      PcuConfig::config8E());
        std::vector<std::string> row{profile.name,
                                     std::to_string(native)};
        for (const auto &c : configs) {
            KernelConfig cfg;
            cfg.mode = KernelMode::Decomposed;
            Cycle cycles = runAppOnKernel(true, profile, cfg, c.pcu);
            double norm = double(cycles) / double(native);
            worst = std::max(worst, norm);
            row.push_back(fmt(norm, 4));
        }
        t.row(row);
    }
    t.print();
    std::printf("\nworst normalized time: %.4f (paper: <1.01 for "
                "real-world applications)\n", worst);
    return 0;
}
