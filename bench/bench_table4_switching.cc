/**
 * @file
 * Table 4 reproduction: domain-switching latency of ISA-Grid against
 * memory misses, system calls and prior isolation mechanisms.
 *
 * Measured rows come from the simulators (steady state, privilege
 * caches warm, 8E. configuration). Rows the paper itself cites from
 * other works (CHERI, Donky, MPK/EPT switch costs) are reproduced as
 * reference constants and marked "cited".
 */

#include <memory>

#include "bench_common.hh"
#include "kernel/layout.hh"
#include "kernel/syscalls.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

constexpr unsigned kSites = 16;   // unrolled measurement sites
constexpr unsigned kIters = 400;  // loop iterations

struct GatePlan
{
    Addr gate_pc;
    AsmIface::Label dest;
    DomainId dest_domain;
};

/**
 * Measure cycles per unrolled site: emits a warmup pass plus a marked
 * loop whose body `body(site)` is emitted kSites times.
 */
double
measure(Machine &machine,
        const std::function<void(AsmIface &, unsigned)> &body,
        std::vector<GatePlan> *gates = nullptr,
        DomainId start_domain = 0,
        const std::function<void(AsmIface &)> &setup = {})
{
    auto ap = machine.isa().name() == "x86"
                  ? makeX86Asm(layout::userCodeBase)
                  : makeRiscvAsm(layout::userCodeBase);
    AsmIface &a = *ap;
    unsigned u0 = a.regUser(0), m = a.regArg(2);

    a.li(a.regSp(), layout::userStackTop);
    if (setup)
        setup(a);
    // Warmup pass (fills privilege caches and the branch predictor).
    body(a, ~0u);
    a.li(m, 1);
    a.simmark(m);
    a.li(u0, kIters);
    auto loop = a.newLabel();
    a.bind(loop);
    for (unsigned s = 0; s < kSites; ++s)
        body(a, s);
    a.loopDec(u0, loop);
    a.li(m, 2);
    a.simmark(m);
    a.li(a.regArg(0), 0);
    a.halt(a.regArg(0));
    a.loadInto(machine.mem());

    if (gates) {
        for (const auto &g : *gates) {
            machine.domains().registerGate(g.gate_pc, a.labelAddr(g.dest),
                                           g.dest_domain);
        }
        machine.domains().publish();
    }
    machine.core().reset(layout::userCodeBase);
    if (start_domain)
        machine.pcu().setGridReg(GridReg::Domain, start_domain);
    RunResult r = machine.core().run(200'000'000);
    if (r.reason != StopReason::Halted)
        fatal("measurement did not halt: %s", faultName(r.fault));
    Cycle roi = appRoiCycles(machine.core());
    return double(roi) / double(kIters * kSites);
}

/** Cycles per hccall: ping-pong between two domains, minus baseline. */
double
measureHccall(bool x86)
{
    auto mk = [&] { return x86 ? Machine::gem5x86() : Machine::rocket(); };

    // Baseline: identical loop shape with li+nop per site.
    auto base_machine = mk();
    base_machine->domains().createBaselineDomain();
    double baseline = measure(*base_machine, [](AsmIface &a, unsigned) {
        a.li(a.regGate(), 0);
        a.mov(a.regTmp(0), a.regTmp(0));
    });

    auto machine = mk();
    DomainId d1 = machine->domains().createBaselineDomain();
    DomainId d2 = machine->domains().createBaselineDomain();
    std::vector<GatePlan> gates;
    double with = measure(
        *machine,
        [&](AsmIface &a, unsigned site) {
            GateId id = gates.size();
            a.li(a.regGate(), id);
            Addr pc = a.here();
            auto dest = a.newLabel();
            a.hccall(a.regGate());
            a.bind(dest);
            // Warmup sites and loop sites each get their own gate,
            // alternating d1/d2 so every hccall really switches.
            gates.push_back({pc, dest, (site % 2) ? d1 : d2});
        },
        &gates, 0);
    return with - baseline;
}

/** Cycles for an hccalls+hcrets pair (cross-domain call and return). */
double
measureHccallsPair(bool x86)
{
    auto mk = [&] { return x86 ? Machine::gem5x86() : Machine::rocket(); };

    auto base_machine = mk();
    base_machine->domains().createBaselineDomain();
    double baseline = measure(*base_machine, [](AsmIface &a, unsigned) {
        a.li(a.regGate(), 0);
        a.mov(a.regTmp(0), a.regTmp(0));
    });

    auto machine = mk();
    DomainId d1 = machine->domains().createBaselineDomain();
    DomainId d2 = machine->domains().createBaselineDomain();
    std::vector<GatePlan> gates;
    bool entered = false;
    double with = measure(
        *machine,
        [&](AsmIface &a, unsigned site) {
            if (!entered) {
                // hcrets may never re-enter domain-0 (Section 4.4),
                // so leave it through a plain gate before the first
                // extended call.
                entered = true;
                GateId id = gates.size();
                a.li(a.regGate(), id);
                Addr pc = a.here();
                auto in_d1 = a.newLabel();
                a.hccall(a.regGate());
                a.bind(in_d1);
                gates.push_back({pc, in_d1, d1});
            }
            GateId id = gates.size();
            a.li(a.regGate(), id);
            Addr pc = a.here();
            a.hccalls(a.regGate());
            // Callee: jump over it inline.
            auto after = a.newLabel();
            a.jmp(after);
            auto callee = a.newLabel();
            a.bind(callee);
            a.hcrets();
            a.bind(after);
            gates.push_back({pc, callee, (site % 2) ? d1 : d2});
        },
        &gates, 0);
    // The emitted jmp-over adds one taken branch per site; subtract a
    // measured taken-branch cost? The jmp is short and identical in
    // baseline terms; keep the pair cost inclusive of one jmp, which
    // is how a real call site would look.
    return with - baseline;
}

/**
 * Cache-missing load *latency* (the paper's ">120 / >200" rows): a
 * dependent pointer chase, so out-of-order overlap cannot hide it.
 */
double
measureMissLoad(bool x86)
{
    auto mk = [&] { return x86 ? Machine::gem5x86() : Machine::rocket(); };
    constexpr Addr chain = layout::userDataBase;
    constexpr std::uint64_t span = 8ull << 20; // 8 MiB
    // Line-sized stride: defeats every cache level over an 8 MiB span
    // while staying TLB-friendly (one page walk per 64 lines), so the
    // row isolates the *memory* miss latency like the paper's.
    constexpr std::uint64_t stride = 64;

    auto chase = [](AsmIface &a, unsigned) {
        a.load64(a.regUser(1), a.regUser(1), 0);
    };
    auto setup = [](AsmIface &a) { a.li(a.regUser(1), chain); };

    // Miss chain: each element points stride bytes ahead, wrapping.
    auto miss_machine = mk();
    for (Addr p = 0; p < span; p += stride) {
        Addr next = (p + stride) % span;
        miss_machine->mem().write64(chain + p, chain + next);
    }
    double miss = measure(*miss_machine, chase, nullptr, 0, setup);

    // Hit chain: one element pointing at itself.
    auto hit_machine = mk();
    hit_machine->mem().write64(chain, chain);
    double hit = measure(*hit_machine, chase, nullptr, 0, setup);
    return miss - hit;
}

/** Empty syscall cost (cycles per round trip), optionally with PTI. */
double
measureSyscall(bool x86, bool pti)
{
    auto machine = x86 ? Machine::gem5x86() : Machine::rocket();
    auto ap = x86 ? makeX86Asm(layout::userCodeBase)
                  : makeRiscvAsm(layout::userCodeBase);
    AsmIface &a = *ap;
    unsigned u0 = a.regUser(0), m = a.regArg(2);
    a.li(a.regSp(), layout::userStackTop);
    a.li(a.regArg(0), std::uint64_t(Sys::Getpid));
    a.syscallInst(); // warmup
    a.li(m, 1);
    a.simmark(m);
    a.li(u0, kIters);
    auto loop = a.newLabel();
    a.bind(loop);
    a.li(a.regArg(0), std::uint64_t(Sys::Getpid));
    a.syscallInst();
    a.loopDec(u0, loop);
    a.li(m, 2);
    a.simmark(m);
    a.li(a.regArg(0), 0);
    a.halt(a.regArg(0));
    a.loadInto(machine->mem());

    KernelConfig config;
    config.mode = KernelMode::Monolithic;
    config.pti = pti;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(layout::userCodeBase);
    RunResult r = machine->run(image.boot_pc, 200'000'000);
    if (r.reason != StopReason::Halted)
        fatal("syscall bench did not halt: %s", faultName(r.fault));
    return double(appRoiCycles(machine->core())) / double(kIters);
}

} // namespace

int
main()
{
    printTable3();
    heading("Table 4: domain switching latency (measured, 8E.)");
    Table t({"CPU", "Instruction / scheme", "Cycles", "Source"});

    for (bool x86 : {false, true}) {
        const char *cpu = x86 ? "x86 O3 (sim)" : "RISC-V in-order (sim)";
        t.row({cpu, "load/store (all-level miss)",
               fmt(measureMissLoad(x86), 1), "measured"});
        double one = measureHccall(x86);
        t.row({cpu, "hccall", fmt(one, 1), "measured"});
        double pair = measureHccallsPair(x86);
        t.row({cpu, "hccalls+hcrets (pair)", fmt(pair, 1), "measured"});
        // The paper's "X-domain call" rows: an empty cross-domain
        // function call, via two hccall or one hccalls+hcrets pair.
        t.row({cpu, "X-domain call (2x hccall)", fmt(2 * one, 1),
               "measured"});
        t.row({cpu, "X-domain call (hccalls+hcrets)", fmt(pair, 1),
               "measured"});
        t.row({cpu, "empty syscall w/o PTI",
               fmt(measureSyscall(x86, false), 1), "measured"});
        t.row({cpu, "empty syscall w/ PTI",
               fmt(measureSyscall(x86, true), 1), "measured"});
    }

    // Rows the paper cites from other systems, for context.
    t.row({"CHERI MIPS", "CHERI domain crossing", ">400", "cited [71]"});
    t.row({"RISC-V Ariane", "Donky permission change", "2136",
           "cited [59]"});
    t.row({"x86 KVM", "empty VM call", "~1700", "cited [29]"});
    t.row({"x86", "wrpkru (MPK)", "26", "cited [29]"});
    t.print();

    std::printf(
        "\nPaper reference (Table 4): Rocket load/store miss >120, "
        "hccall 5, hccalls/hcrets 12/12, syscall w/PTI 532, supervisor "
        "call 434; x86 load/store miss >200, hccall 34, hccalls/hcrets "
        "52/44.\nShape to preserve: gate switch is roughly an order of "
        "magnitude cheaper than a trap and two orders cheaper than "
        "VM/permission-table switches.\n");
    return 0;
}
