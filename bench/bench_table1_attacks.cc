/**
 * @file
 * Table 1 reproduction: the ISA-abuse-based attack matrix. Each
 * scenario's prerequisite is attempted natively (succeeds) and inside
 * the decomposed kernel's basic domain (blocked by the PCU).
 */

#include "attacks/attacks.hh"
#include "bench_common.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

void
runArch(bool x86)
{
    heading(std::string("Table 1: ISA-abuse-based attacks (") +
            (x86 ? "x86" : "RISC-V") + ")");
    Table t({"Attack", "Prerequisite", "Native", "With ISA-Grid",
             "Exception", "Mitigated"});
    for (const auto &s : attackScenarios(x86)) {
        std::string native = "n/a";
        if (!s.requires_isagrid) {
            AttackOutcome o = runAttack(s, x86, false);
            native = o.reached_halt ? "succeeds" : "fails";
        }
        AttackOutcome g = runAttack(s, x86, true);
        t.row({s.name, s.prerequisite, native,
               g.blocked ? "blocked" : "NOT BLOCKED",
               g.blocked ? faultName(g.fault) : "-",
               g.blocked ? "yes" : "NO"});
    }
    t.print();
}

} // namespace

int
main()
{
    runArch(true);
    runArch(false);
    std::printf("\nPaper reference (Table 1): all eight surveyed "
                "ISA-abuse-based attacks are mitigated by ISA-Grid "
                "(100%%). The ARM rows (NAILGUN, Super Root) are "
                "modelled by their closest x86/RISC-V analogues.\n");
    return 0;
}
