/**
 * @file
 * The scenario registry behind tools/isagrid_bench: each entry is a
 * self-contained re-run of one of the paper-reproduction benchmarks
 * (its own Machine, kernel and workload), so scenarios can execute on
 * concurrent threads and be timed individually.
 *
 * Scenarios return *guest* totals (cycles, instructions); the runner
 * adds host wall time and derives insts/sec. Every scenario honours
 * ScenarioOptions::decode_cache_entries and ::block_engine, which
 * only change host speed — the guest totals are identical either way
 * (enforced by tests/test_decode_cache.cc and
 * tests/test_block_equivalence.cc).
 */

#include <fstream>

#include "bench_common.hh"

#include "attacks/attacks.hh"
#include "kernel/layout.hh"
#include "kernel/syscalls.hh"

namespace isagrid {
namespace bench {

namespace {

MachineConfig
baseConfig(const ScenarioOptions &opts, PcuConfig pcu)
{
    MachineConfig mc;
    mc.pcu = pcu;
    mc.decode_cache_entries = opts.decode_cache_entries;
    mc.block_engine = opts.block_engine;
    mc.block_hot_threshold = opts.block_hot_threshold;
    return mc;
}

void
accumulate(ScenarioResult &acc, const RunResult &r)
{
    acc.guest_cycles += r.cycles;
    acc.guest_instructions += r.instructions;
}

/**
 * Metrics export for single-machine scenarios (ScenarioOptions::
 * metrics_out). Sampling is finer than the PerfConfig defaults: these
 * runs are untimed, so overhead does not matter, and the short bench
 * workloads need tighter epochs to yield a usable series.
 */
void
maybeEnableMetrics(Machine &machine, const ScenarioOptions &opts)
{
    if (opts.metrics_out.empty())
        return;
    PerfConfig config;
    config.metrics_interval = 100'000;
    config.profile_interval = 10'000;
    machine.enableMetrics(config);
}

void
maybeWriteMetrics(Machine &machine, const ScenarioOptions &opts,
                  const RunResult &r)
{
    if (opts.metrics_out.empty() || !machine.perf())
        return;
    machine.perf()->finalize(r.instructions, r.cycles);
    std::ofstream os(opts.metrics_out);
    if (!os)
        fatal("cannot write %s", opts.metrics_out.c_str());
    machine.perf()->writeJson(os);
}

// --- fig5: LMbench suite under the decomposed RISC-V kernel ---------

ScenarioResult
lmbenchScenario(KernelMode mode, PcuConfig pcu,
                const ScenarioOptions &opts)
{
    auto machine = Machine::rocket(baseConfig(opts, pcu));
    // More iterations than the Figure 5 binary (300): these scenarios
    // track *host* speed, so simulation must dominate machine and
    // kernel setup for the wall time to mean anything.
    Addr entry = buildLmbenchSuite(*machine, 5000);
    KernelConfig config;
    config.mode = mode;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(entry);
    maybeEnableMetrics(*machine, opts);
    RunResult r = machine->run(image.boot_pc, 500'000'000);
    if (r.reason != StopReason::Halted)
        fatal("lmbench scenario did not halt: %s", faultName(r.fault));
    maybeWriteMetrics(*machine, opts, r);
    ScenarioResult res;
    accumulate(res, r);
    return res;
}

// --- fig6/fig7: application workloads ------------------------------

ScenarioResult
appsScenario(bool x86, KernelMode mode, const ScenarioOptions &opts)
{
    MachineConfig mc = baseConfig(opts, PcuConfig::config8E());
    ScenarioResult res;
    for (const AppProfile &profile : AppProfile::all()) {
        KernelConfig config;
        config.mode = mode;
        std::unique_ptr<Machine> keep;
        runAppOnKernel(x86, profile, config, mc.pcu, nullptr, &keep,
                       &mc);
        res.guest_cycles += keep->core().cycles();
        res.guest_instructions += keep->core().instructions();
    }
    return res;
}

// --- table1: the attack corpus --------------------------------------

ScenarioResult
attacksScenario(bool x86, const ScenarioOptions &opts)
{
    ScenarioResult res;
    for (const AttackScenario &scenario : attackScenarios(x86)) {
        if (scenario.x86_only && !x86)
            continue;
        for (bool with_isagrid : {true, false}) {
            if (scenario.requires_isagrid && !with_isagrid)
                continue;
            PreparedAttack prepared =
                prepareAttack(scenario, x86, with_isagrid);
            Machine &m = *prepared.machine;
            m.core().setDecodeCache(opts.decode_cache_entries);
            if (opts.block_engine)
                m.core().setBlockEngine(opts.block_hot_threshold);
            m.core().reset(prepared.payload_entry);
            if (with_isagrid) {
                m.pcu().setGridReg(GridReg::Domain,
                                   prepared.payload_domain);
            }
            accumulate(res, m.core().run(100'000));
        }
    }
    return res;
}

// --- table4: domain-switching microbenchmarks ------------------------

constexpr unsigned kSites = 16;
constexpr unsigned kIters = 400;

struct GatePlan
{
    Addr gate_pc;
    AsmIface::Label dest;
    DomainId dest_domain;
};

/** The Table 4 measured loop (warmup pass + kIters x kSites body). */
RunResult
runSwitchLoop(Machine &machine,
              const std::function<void(AsmIface &, unsigned)> &body,
              std::vector<GatePlan> *gates = nullptr)
{
    auto ap = machine.isa().name() == "x86"
                  ? makeX86Asm(layout::userCodeBase)
                  : makeRiscvAsm(layout::userCodeBase);
    AsmIface &a = *ap;
    unsigned u0 = a.regUser(0), m = a.regArg(2);

    a.li(a.regSp(), layout::userStackTop);
    body(a, ~0u); // warmup pass
    a.li(m, 1);
    a.simmark(m);
    a.li(u0, kIters);
    auto loop = a.newLabel();
    a.bind(loop);
    for (unsigned s = 0; s < kSites; ++s)
        body(a, s);
    a.loopDec(u0, loop);
    a.li(m, 2);
    a.simmark(m);
    a.li(a.regArg(0), 0);
    a.halt(a.regArg(0));
    a.loadInto(machine.mem());

    if (gates) {
        for (const auto &g : *gates) {
            machine.domains().registerGate(
                g.gate_pc, a.labelAddr(g.dest), g.dest_domain);
        }
        machine.domains().publish();
    }
    machine.core().reset(layout::userCodeBase);
    RunResult r = machine.core().run(200'000'000);
    if (r.reason != StopReason::Halted)
        fatal("switching scenario did not halt: %s",
              faultName(r.fault));
    return r;
}

/** hccall ping-pong between two basic domains (Table 4's gate row). */
ScenarioResult
hccallScenario(bool x86, const ScenarioOptions &opts)
{
    MachineConfig mc = baseConfig(opts, PcuConfig::config8E());
    auto machine = x86 ? Machine::gem5x86(mc) : Machine::rocket(mc);
    DomainId d1 = machine->domains().createBaselineDomain();
    DomainId d2 = machine->domains().createBaselineDomain();
    maybeEnableMetrics(*machine, opts);
    std::vector<GatePlan> gates;
    RunResult r = runSwitchLoop(
        *machine,
        [&](AsmIface &a, unsigned site) {
            GateId id = gates.size();
            a.li(a.regGate(), id);
            Addr pc = a.here();
            auto dest = a.newLabel();
            a.hccall(a.regGate());
            a.bind(dest);
            gates.push_back({pc, dest, (site % 2) ? d1 : d2});
        },
        &gates);
    maybeWriteMetrics(*machine, opts, r);
    ScenarioResult res;
    accumulate(res, r);
    return res;
}

/** Empty-syscall round trips under a monolithic kernel. */
ScenarioResult
syscallScenario(bool x86, bool pti, const ScenarioOptions &opts)
{
    MachineConfig mc = baseConfig(opts, PcuConfig::config8E());
    auto machine = x86 ? Machine::gem5x86(mc) : Machine::rocket(mc);
    auto ap = x86 ? makeX86Asm(layout::userCodeBase)
                  : makeRiscvAsm(layout::userCodeBase);
    AsmIface &a = *ap;
    unsigned u0 = a.regUser(0), m = a.regArg(2);
    a.li(a.regSp(), layout::userStackTop);
    a.li(a.regArg(0), std::uint64_t(Sys::Getpid));
    a.syscallInst(); // warmup
    a.li(m, 1);
    a.simmark(m);
    a.li(u0, kIters);
    auto loop = a.newLabel();
    a.bind(loop);
    a.li(a.regArg(0), std::uint64_t(Sys::Getpid));
    a.syscallInst();
    a.loopDec(u0, loop);
    a.li(m, 2);
    a.simmark(m);
    a.li(a.regArg(0), 0);
    a.halt(a.regArg(0));
    a.loadInto(machine->mem());

    KernelConfig config;
    config.mode = KernelMode::Monolithic;
    config.pti = pti;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(layout::userCodeBase);
    maybeEnableMetrics(*machine, opts);
    RunResult r = machine->run(image.boot_pc, 200'000'000);
    if (r.reason != StopReason::Halted)
        fatal("syscall scenario did not halt: %s", faultName(r.fault));
    maybeWriteMetrics(*machine, opts, r);
    ScenarioResult res;
    accumulate(res, r);
    return res;
}

} // namespace

std::vector<Scenario>
allScenarios()
{
    std::vector<Scenario> s;
    auto add = [&](std::string group, std::string name, auto fn) {
        s.push_back({std::move(group), std::move(name),
                     std::function<ScenarioResult(
                         const ScenarioOptions &)>(fn)});
    };

    add("fig5", "lmbench_native", [](const ScenarioOptions &o) {
        return lmbenchScenario(KernelMode::Monolithic,
                               PcuConfig::config8E(), o);
    });
    add("fig5", "lmbench_16E", [](const ScenarioOptions &o) {
        return lmbenchScenario(KernelMode::Decomposed,
                               PcuConfig::config16E(), o);
    });
    add("fig5", "lmbench_8E", [](const ScenarioOptions &o) {
        return lmbenchScenario(KernelMode::Decomposed,
                               PcuConfig::config8E(), o);
    });
    add("fig5", "lmbench_8EN", [](const ScenarioOptions &o) {
        return lmbenchScenario(KernelMode::Decomposed,
                               PcuConfig::config8EN(), o);
    });

    add("fig6", "apps_riscv_native", [](const ScenarioOptions &o) {
        return appsScenario(false, KernelMode::Monolithic, o);
    });
    add("fig6", "apps_riscv_8E", [](const ScenarioOptions &o) {
        return appsScenario(false, KernelMode::Decomposed, o);
    });

    add("fig7", "apps_x86_native", [](const ScenarioOptions &o) {
        return appsScenario(true, KernelMode::Monolithic, o);
    });
    add("fig7", "apps_x86_8E", [](const ScenarioOptions &o) {
        return appsScenario(true, KernelMode::Decomposed, o);
    });

    add("table1", "attacks_riscv", [](const ScenarioOptions &o) {
        return attacksScenario(false, o);
    });
    add("table1", "attacks_x86", [](const ScenarioOptions &o) {
        return attacksScenario(true, o);
    });

    add("table4", "hccall_pingpong_riscv", [](const ScenarioOptions &o) {
        return hccallScenario(false, o);
    });
    add("table4", "hccall_pingpong_x86", [](const ScenarioOptions &o) {
        return hccallScenario(true, o);
    });
    add("table4", "syscall_riscv", [](const ScenarioOptions &o) {
        return syscallScenario(false, false, o);
    });
    add("table4", "syscall_x86", [](const ScenarioOptions &o) {
        return syscallScenario(true, false, o);
    });
    add("table4", "syscall_x86_pti", [](const ScenarioOptions &o) {
        return syscallScenario(true, true, o);
    });

    return s;
}

} // namespace bench
} // namespace isagrid
