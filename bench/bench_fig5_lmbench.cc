/**
 * @file
 * Figure 5 reproduction: normalized LMbench-style execution time with
 * the decomposed Linux kernel on RISC-V, for the 16E., 8E. and 8E.N
 * privilege-cache configurations (baseline: unmodified kernel).
 */

#include "bench_common.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

std::vector<LmbenchResult>
runSuite(KernelMode mode, PcuConfig pcu, unsigned iters)
{
    MachineConfig mc;
    mc.pcu = pcu;
    auto machine = Machine::rocket(mc);
    Addr entry = buildLmbenchSuite(*machine, iters);
    KernelConfig config;
    config.mode = mode;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(entry);
    RunResult r = machine->run(image.boot_pc, 500'000'000);
    if (r.reason != StopReason::Halted)
        fatal("lmbench run did not halt: %s", faultName(r.fault));
    return extractLmbenchResults(machine->core(), iters);
}

} // namespace

int
main()
{
    const unsigned iters = 300;
    heading("Figure 5: LMbench normalized execution time, "
            "RISC-V kernel decomposition");

    auto native = runSuite(KernelMode::Monolithic,
                           PcuConfig::config8E(), iters);
    struct Config
    {
        const char *name;
        PcuConfig pcu;
    } configs[] = {
        {"16E.", PcuConfig::config16E()},
        {"8E.", PcuConfig::config8E()},
        {"8E.N", PcuConfig::config8EN()},
    };

    Table t({"benchmark", "native (cyc/op)", "16E.", "8E.", "8E.N"});
    std::vector<std::vector<LmbenchResult>> runs;
    for (const auto &c : configs)
        runs.push_back(runSuite(KernelMode::Decomposed, c.pcu, iters));

    double worst = 1.0;
    for (unsigned op = 0; op < numLmbenchOps; ++op) {
        std::vector<std::string> row;
        row.push_back(lmbenchOpName(LmbenchOp(op)));
        row.push_back(fmt(native[op].cycles_per_op, 1));
        for (const auto &run : runs) {
            double norm =
                run[op].cycles_per_op / native[op].cycles_per_op;
            worst = std::max(worst, norm);
            row.push_back(fmt(norm, 4));
        }
        t.row(row);
    }
    t.print();
    std::printf("\nworst normalized time: %.4f\n", worst);
    std::printf("Paper reference (Figure 5): decomposition overhead on "
                "LMbench operations is small (normalized times near "
                "1.0); syscall-path microbenchmarks show the largest "
                "relative cost because a gate pair is added to a short "
                "path.\n");
    return 0;
}
