/**
 * @file
 * Case 3 reproduction (Section 7.2): enhancing Intel PKS with
 * ISA-Grid. The paper estimates a PKS+ISA-Grid memory-permission
 * switch as the Hodor-measured MPK trampoline (105 cycles, of which
 * wrpkru is 26) plus two hccall crossings, and compares against page
 * table switching and VMFUNC. We measure the two-hccall round trip on
 * the x86 model and recompute the estimate.
 */

#include <memory>

#include "bench_common.hh"
#include "kernel/layout.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

/** Round trip d1 -> d2 -> d1 with two hccall gates, steady state. */
double
measureTwoHccall()
{
    auto machine = Machine::gem5x86();
    DomainId d1 = machine->domains().createBaselineDomain();
    DomainId d2 = machine->domains().createBaselineDomain();

    auto ap = makeX86Asm(layout::userCodeBase);
    AsmIface &a = *ap;
    const unsigned iters = 400;
    unsigned u0 = a.regUser(0), m = a.regArg(2);

    struct Gate
    {
        Addr pc;
        AsmIface::Label dest;
        DomainId domain;
    };
    std::vector<Gate> gates;
    auto round_trip = [&]() {
        a.li(a.regGate(), gates.size());
        Addr pc1 = a.here();
        auto in_d2 = a.newLabel();
        a.hccall(a.regGate());
        a.bind(in_d2);
        gates.push_back({pc1, in_d2, d2});
        a.li(a.regGate(), gates.size());
        Addr pc2 = a.here();
        auto back = a.newLabel();
        a.hccall(a.regGate());
        a.bind(back);
        gates.push_back({pc2, back, d1});
    };

    // Enter d1 once.
    {
        a.li(a.regGate(), gates.size());
        Addr pc = a.here();
        auto in_d1 = a.newLabel();
        a.hccall(a.regGate());
        a.bind(in_d1);
        gates.push_back({pc, in_d1, d1});
    }
    round_trip(); // warmup
    a.li(m, 1);
    a.simmark(m);
    a.li(u0, iters);
    auto loop = a.newLabel();
    a.bind(loop);
    round_trip();
    a.loopDec(u0, loop);
    a.li(m, 2);
    a.simmark(m);
    a.li(a.regArg(0), 0);
    a.halt(a.regArg(0));
    a.loadInto(machine->mem());

    for (const auto &g : gates) {
        machine->domains().registerGate(g.pc, a.labelAddr(g.dest),
                                        g.domain);
    }
    machine->domains().publish();
    machine->core().reset(layout::userCodeBase);
    RunResult r = machine->core().run(100'000'000);
    if (r.reason != StopReason::Halted)
        fatal("pks bench did not halt: %s", faultName(r.fault));
    return double(appRoiCycles(machine->core())) / double(iters);
}

} // namespace

int
main()
{
    printTable3();
    heading("Case 3: PKS + ISA-Grid memory-permission switch estimate");

    // Constants the paper takes from Hodor [29].
    const double wrpkru = 26;
    const double mpk_trampoline = 105;
    const double pt_switch_pti = 938;
    const double pt_switch = 577;
    const double vmfunc = 268;

    double two_hccall = measureTwoHccall();
    double estimate = mpk_trampoline + two_hccall;

    Table t({"mechanism", "cycles", "source"});
    t.row({"wrpkru alone", fmt(wrpkru, 0), "cited (Hodor)"});
    t.row({"MPK trampoline", fmt(mpk_trampoline, 0), "cited (Hodor)"});
    t.row({"two hccall (enable wrpkrs domain + back)",
           fmt(two_hccall, 1), "measured"});
    t.row({"PKS + ISA-Grid trampoline (estimate)", fmt(estimate, 1),
           "105 + measured"});
    t.row({"page-table switch w/ PTI", fmt(pt_switch_pti, 0),
           "cited (Hodor)"});
    t.row({"page-table switch w/o PTI", fmt(pt_switch, 0),
           "cited (Hodor)"});
    t.row({"EPT switch via vmfunc", fmt(vmfunc, 0), "cited (Hodor)"});
    t.print();

    std::printf("\nPaper reference: 105 + 70 = 175 cycles, still "
                "faster than 938/577/268-cycle alternatives. Shape to "
                "preserve: estimate < vmfunc < page-table switches.\n");
    if (estimate < vmfunc) {
        std::printf("shape HOLDS: %.1f < %.0f\n", estimate, vmfunc);
    } else {
        std::printf("shape VIOLATED: %.1f >= %.0f\n", estimate, vmfunc);
    }
    return 0;
}
