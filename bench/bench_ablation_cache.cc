/**
 * @file
 * Ablation study (beyond the paper's three configurations): privilege
 * cache size sweep, SGT cache on/off, bypass register on/off, and
 * software prefetch, measured as decomposed-kernel overhead on the
 * most kernel-intensive application profile.
 */

#include <memory>

#include "bench_common.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

struct Sample
{
    Cycle cycles;
    double inst_hit;
    double reg_hit;
    std::uint64_t cam_compares;
};

Sample
runOne(bool x86, PcuConfig pcu, bool prefetch)
{
    AppProfile profile = AppProfile::sqlite();
    profile.total_blocks = 12000;
    KernelConfig cfg;
    cfg.mode = KernelMode::Decomposed;
    cfg.prefetch_on_entry = prefetch;
    std::unique_ptr<Machine> keep;
    Cycle cycles = runAppOnKernel(x86, profile, cfg, pcu, nullptr,
                                  &keep);
    auto rate = [](auto &cache) {
        double total = double(cache.hits() + cache.misses());
        return total == 0 ? 1.0 : double(cache.hits()) / total;
    };
    PrivilegeCheckUnit &p = keep->pcu();
    return {cycles, rate(p.instCache()), rate(p.regCache()),
            p.instCache().camCompares() + p.regCache().camCompares() +
                p.maskCache().camCompares() +
                p.sgtCache().camCompares()};
}

} // namespace

int
main()
{
    for (bool x86 : {false, true}) {
        heading(std::string("Ablation: privilege-cache sweep (") +
                (x86 ? "x86" : "RISC-V") +
                ", sqlite profile, decomposed kernel)");

        KernelConfig native_cfg;
        AppProfile profile = AppProfile::sqlite();
        profile.total_blocks = 12000;
        native_cfg.mode = KernelMode::Monolithic;
        Cycle native = runAppOnKernel(x86, profile, native_cfg,
                                      PcuConfig::config8E());

        Table t({"HPT entries", "SGT entries", "bypass", "prefetch",
                 "overhead", "inst-hit", "reg-hit", "CAM compares"});
        struct Variant
        {
            std::uint32_t hpt, sgt;
            bool bypass, prefetch;
            std::uint32_t legal = 0; //!< Draco-style cache (Section 8)
            bool unified = false;    //!< unified HPT cache (Section 4.3)
        };
        std::vector<Variant> variants;
        for (std::uint32_t e : {1u, 2u, 4u, 8u, 16u, 32u})
            variants.push_back({e, e, true, false});
        variants.push_back({8, 0, true, false});      // 8E.N
        variants.push_back({8, 8, false, false});     // no bypass
        variants.push_back({8, 8, true, true});       // prefetch
        variants.push_back({1, 1, false, false});     // worst case
        variants.push_back({8, 8, false, false, 64}); // Draco cache
        variants.push_back({8, 8, true, false, 0, true}); // unified HPT

        for (const auto &v : variants) {
            PcuConfig pcu;
            pcu.hpt_cache_entries = v.hpt;
            pcu.sgt_cache_entries = v.sgt;
            pcu.bypass_enabled = v.bypass;
            pcu.legal_cache_entries = v.legal;
            pcu.unified_hpt_cache = v.unified;
            Sample s = runOne(x86, pcu, v.prefetch);
            std::string label = std::to_string(v.hpt);
            if (v.legal)
                label += " +legal" + std::to_string(v.legal);
            if (v.unified)
                label += " unified";
            t.row({label, std::to_string(v.sgt),
                   v.bypass ? "on" : "off",
                   v.prefetch ? "on" : "off",
                   fmtPercent(100.0 * (double(s.cycles) / native - 1.0),
                              3),
                   fmtPercent(100 * s.inst_hit, 2),
                   fmtPercent(100 * s.reg_hit, 2),
                   std::to_string(s.cam_compares)});
        }
        t.print();
    }
    std::printf("\nExpected shape: overhead shrinks with cache size "
                "and saturates by 8 entries (hence the paper's 8E. "
                "default); disabling the bypass multiplies CAM "
                "compares (energy proxy) without helping performance; "
                "prefetch trims cold misses after domain entry but "
                "its presence probes are themselves CAM searches, so "
                "the prefetch row pays for them in the compare "
                "count.\n");
    return 0;
}
