/**
 * @file
 * Table 6 reproduction: FPGA resource cost of ISA-Grid on the Rocket
 * Core, from the analytical technology-mapping model (hwcost), plus
 * an extrapolation to cache sizes the paper never synthesized.
 */

#include "bench_common.hh"
#include "hwcost/hwcost.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

std::string
cell(double total, double base)
{
    return fmt(total, 0) + " (" +
           fmtPercent(100.0 * (total - base) / base) + ")";
}

void
printConfig(Table &t, const char *name, const PcuConfig &config)
{
    PcuStructure s = pcuStructure(config, 64, 13, 1, 12);
    HwCost total = totalWithPcu(s);
    t.row({name, cell(total.lut_logic, RocketBaseline::lut_logic),
           fmt(total.lut_memory, 0),
           cell(total.slice_regs, RocketBaseline::slice_regs),
           fmt(total.ramb36, 0), fmt(total.ramb18, 0),
           fmt(total.dsp, 0)});
}

} // namespace

int
main()
{
    heading("Table 6: modelled FPGA cost of ISA-Grid (Rocket Core)");
    Table t({"config", "LUT as Logic", "LUT as Mem", "Slice Registers",
             "RAMB36", "RAMB18", "DSP48E1"});
    t.row({"Rocket Core", fmt(RocketBaseline::lut_logic, 0),
           fmt(RocketBaseline::lut_memory, 0),
           fmt(RocketBaseline::slice_regs, 0),
           fmt(RocketBaseline::ramb36, 0),
           fmt(RocketBaseline::ramb18, 0),
           fmt(RocketBaseline::dsp, 0)});
    printConfig(t, "16E.", PcuConfig::config16E());
    printConfig(t, "8E.", PcuConfig::config8E());
    printConfig(t, "8E.N", PcuConfig::config8EN());
    t.print();

    heading("Extrapolation: cache-size sweep (model only)");
    Table t2({"HPT entries", "SGT entries", "LUT delta", "FF delta"});
    for (std::uint32_t hpt : {2u, 4u, 8u, 16u, 32u, 64u}) {
        for (std::uint32_t sgt : {0u, hpt}) {
            PcuConfig c;
            c.hpt_cache_entries = hpt;
            c.sgt_cache_entries = sgt;
            PcuStructure s = pcuStructure(c, 64, 13, 1, 12);
            HwCost cost = pcuCost(s);
            t2.row({std::to_string(hpt), std::to_string(sgt),
                    fmt(cost.lut_logic, 0), fmt(cost.slice_regs, 0)});
        }
    }
    t2.print();

    std::printf("\nPaper reference (Table 6): 16E. +4.47%% LUT / "
                "+7.20%% FF; 8E. +3.03%% / +4.34%%; 8E.N +2.21%% / "
                "+2.95%%; no extra BRAM or DSP. The model is fitted to "
                "those three synthesis points (see DESIGN.md), so the "
                "value here is the relative ordering and the sweep.\n");
    return 0;
}
