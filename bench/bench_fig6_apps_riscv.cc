/**
 * @file
 * Figure 6 reproduction: normalized execution time of the application
 * workloads with the decomposed kernel on RISC-V (16E./8E./8E.N),
 * against the unmodified kernel. The paper reports <1% overhead.
 */

#include "bench_common.hh"

using namespace isagrid;
using namespace isagrid::bench;

int
main()
{
    heading("Figure 6: application normalized execution time, "
            "RISC-V kernel decomposition");

    struct Config
    {
        const char *name;
        PcuConfig pcu;
    } configs[] = {
        {"16E.", PcuConfig::config16E()},
        {"8E.", PcuConfig::config8E()},
        {"8E.N", PcuConfig::config8EN()},
    };

    Table t({"app", "native (cycles)", "16E.", "8E.", "8E.N"});
    double worst = 1.0;
    for (const AppProfile &profile : AppProfile::all()) {
        KernelConfig native_cfg;
        native_cfg.mode = KernelMode::Monolithic;
        Cycle native = runAppOnKernel(false, profile, native_cfg,
                                      PcuConfig::config8E());
        std::vector<std::string> row{profile.name,
                                     std::to_string(native)};
        for (const auto &c : configs) {
            KernelConfig cfg;
            cfg.mode = KernelMode::Decomposed;
            Cycle cycles = runAppOnKernel(false, profile, cfg, c.pcu);
            double norm = double(cycles) / double(native);
            worst = std::max(worst, norm);
            row.push_back(fmt(norm, 4));
        }
        t.row(row);
    }
    t.print();
    std::printf("\nworst normalized time: %.4f (paper: <1.01 for "
                "real-world applications)\n", worst);
    return 0;
}
