/**
 * @file
 * Event-tracing overhead on the simulator hot path.
 *
 * The tracing macros (ISAGRID_TRACE_EVENT) sit inside the PCU check
 * and the core's retire/trap paths, so they are always compiled in.
 * The design claim is that with no trace buffer attached they cost one
 * pointer compare and the simulator stays within 2% of its untraced
 * speed. This harness measures the fig5 lmbench scenario (decomposed
 * RISC-V kernel, 8E. privilege caches — the same workload behind the
 * committed BENCH_fig5.json numbers) in three configurations:
 *
 *   disabled       tracing compiled in, no buffer attached
 *   default-filter buffer + NullTraceSink, switching-activity kinds
 *   all-events     buffer + NullTraceSink, every kind incl. per-inst
 *
 * and reports host MIPS plus the relative overhead of each enabled
 * configuration against `disabled`. When the committed BENCH_fig5.json
 * is found (--baseline=PATH overrides the default), the disabled
 * configuration is also compared against its lmbench_8E
 * insts_per_second; that comparison is informational unless --gate is
 * given, because wall-clock MIPS committed from one host are only
 * meaningful on comparable hardware.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "sim/trace.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

enum class TraceMode { Disabled, DefaultFilter, AllEvents };

/** One timed lmbench run; returns {wall seconds, instructions}. */
std::pair<double, std::uint64_t>
timedRun(TraceMode mode)
{
    MachineConfig mc;
    mc.pcu = PcuConfig::config8E();
    auto machine = Machine::rocket(mc);
    Addr entry = buildLmbenchSuite(*machine, 5000);
    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(entry);

    NullTraceSink null_sink;
    if (mode != TraceMode::Disabled) {
        TraceBuffer &trace = machine->enableTracing();
        trace.attachSink(&null_sink);
        trace.setFilter(mode == TraceMode::AllEvents
                            ? kTraceFilterAll
                            : kTraceFilterDefault);
    }

    auto start = std::chrono::steady_clock::now();
    RunResult r = machine->run(image.boot_pc, 500'000'000);
    auto stop = std::chrono::steady_clock::now();
    if (r.reason != StopReason::Halted)
        fatal("lmbench run did not halt: %s", faultName(r.fault));
    if (machine->trace())
        machine->trace()->flush();
    double secs = std::chrono::duration<double>(stop - start).count();
    return {secs, r.instructions};
}

/**
 * Best-of-N MIPS for every configuration. Rounds are interleaved
 * (one run of each configuration per round) so slow drift in host
 * load hits all configurations alike instead of biasing whichever
 * block ran while the machine was busy; best-of discards transient
 * slowdowns.
 */
std::vector<double>
measureAll(const std::vector<TraceMode> &modes, unsigned repeat)
{
    timedRun(modes.front());
    std::vector<double> best(modes.size(), 0);
    for (unsigned i = 0; i < repeat; ++i) {
        for (std::size_t m = 0; m < modes.size(); ++m) {
            auto [secs, insts] = timedRun(modes[m]);
            best[m] = std::max(best[m], double(insts) / secs);
        }
    }
    return best;
}

/**
 * Pull scenarios[name].insts_per_second out of a BENCH_*.json file
 * with a plain text scan (the files are machine-written, flat, and a
 * JSON parser dependency is not worth it here). Returns 0 if absent.
 */
double
baselineMips(const std::string &path, const std::string &name)
{
    std::ifstream is(path);
    if (!is)
        return 0;
    std::stringstream ss;
    ss << is.rdbuf();
    std::string text = ss.str();
    std::size_t at = text.find("\"name\": \"" + name + "\"");
    if (at == std::string::npos)
        return 0;
    std::size_t key = text.find("\"insts_per_second\":", at);
    if (key == std::string::npos)
        return 0;
    return std::strtod(text.c_str() + key + std::strlen(
                           "\"insts_per_second\":"), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
#ifndef BENCH_BASELINE_DIR
#define BENCH_BASELINE_DIR "."
#endif
    std::string baseline_path =
        std::string(BENCH_BASELINE_DIR) + "/BENCH_fig5.json";
    bool gate = false;
    unsigned repeat = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--baseline=", 11) == 0)
            baseline_path = argv[i] + 11;
        else if (std::strncmp(argv[i], "--repeat=", 9) == 0)
            repeat = unsigned(std::stoul(argv[i] + 9));
        else if (std::strcmp(argv[i], "--gate") == 0)
            gate = true;
        else
            fatal("usage: %s [--baseline=FILE] [--repeat=N] [--gate]",
                  argv[0]);
    }

    heading("Event-tracing overhead (fig5 lmbench, decomposed 8E.)");

    struct Config
    {
        const char *name;
        TraceMode mode;
    } configs[] = {
        {"disabled", TraceMode::Disabled},
        {"default-filter", TraceMode::DefaultFilter},
        {"all-events", TraceMode::AllEvents},
    };

    std::vector<TraceMode> modes;
    for (const auto &c : configs)
        modes.push_back(c.mode);
    std::vector<double> mips = measureAll(modes, repeat);

    Table t({"tracing", "MIPS", "vs disabled"});
    for (std::size_t i = 0; i < std::size(configs); ++i) {
        double overhead = 100.0 * (mips[0] / mips[i] - 1.0);
        t.row({configs[i].name, fmt(mips[i] / 1e6, 2),
               i == 0 ? "-" : fmtPercent(overhead, 2)});
    }
    t.print();

    bool ok = true;
    double committed = baselineMips(baseline_path, "lmbench_8E");
    if (committed > 0) {
        double regression = 100.0 * (committed / mips[0] - 1.0);
        std::printf("\ncommitted lmbench_8E baseline: %.2f MIPS (%s)\n"
                    "disabled-tracing regression  : %+.2f%% "
                    "(budget 2%%): %s\n",
                    committed / 1e6, baseline_path.c_str(), regression,
                    regression < 2.0 ? "PASS" : "FAIL");
        if (regression >= 2.0)
            ok = false;
    } else {
        std::printf("\nno committed baseline at %s; skipping the "
                    "regression comparison\n", baseline_path.c_str());
    }

    std::printf("\nThe `disabled` row is the configuration every "
                "non-tracing run pays: the macros reduce to a null "
                "pointer compare. Enabled rows show the cost of "
                "sampling + ring writes with a discarding sink.\n");
    if (!ok && !gate)
        std::printf("(informational: re-run with --gate to turn the "
                    "baseline comparison into an exit status)\n");
    return gate && !ok ? 1 : 0;
}
