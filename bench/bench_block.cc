/**
 * @file
 * Block-translation engine microbenchmarks (cpu/block).
 *
 * Three views of the engine on the workloads the bench harness
 * already tracks:
 *
 *   residency   fig5 lmbench (decomposed RISC-V, 8E.) and the attack
 *               corpus: share of retired instructions that came out
 *               of translated blocks, chain hit rate (successor found
 *               in a block's chain slots), check-memo hit rate (epoch
 *               match vs bypass re-validation), and fallback counts
 *   latency     pure translation cost: every block the lmbench run
 *               produced is flushed and re-translated cold, timed
 *   speed       host MIPS of the block-engine lmbench run, compared
 *               against the committed BENCH_fig5.json lmbench_8E
 *               number (the decode-cache configuration this engine
 *               must beat)
 *
 * The baseline comparison is informational unless --gate is given,
 * because wall-clock MIPS committed from one host are only meaningful
 * on comparable hardware.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "attacks/attacks.hh"
#include "bench_common.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

/** lmbench (fig5, decomposed 8E.) with the block engine on. */
struct LmbenchRun
{
    std::unique_ptr<Machine> machine;
    RunResult result;
    double wall_seconds = 0.0;
};

LmbenchRun
runLmbench(std::uint32_t hot_threshold)
{
    LmbenchRun out;
    MachineConfig mc;
    mc.pcu = PcuConfig::config8E();
    mc.block_engine = true;
    mc.block_hot_threshold = hot_threshold;
    out.machine = Machine::rocket(mc);
    Addr entry = buildLmbenchSuite(*out.machine, 5000);
    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    KernelBuilder builder(*out.machine, config);
    KernelImage image = builder.build(entry);
    auto t0 = std::chrono::steady_clock::now();
    out.result = out.machine->run(image.boot_pc, 500'000'000);
    auto t1 = std::chrono::steady_clock::now();
    if (out.result.reason != StopReason::Halted)
        fatal("lmbench run did not halt: %s",
              faultName(out.result.fault));
    out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

/** The attack corpus (both payload modes) with the block engine on. */
BlockEngine::HostStats
runAttackCorpus(std::uint64_t &instructions)
{
    BlockEngine::HostStats total{};
    instructions = 0;
    for (const AttackScenario &scenario : attackScenarios(false)) {
        for (bool with_isagrid : {true, false}) {
            if (scenario.requires_isagrid && !with_isagrid)
                continue;
            PreparedAttack prepared =
                prepareAttack(scenario, false, with_isagrid);
            Machine &m = *prepared.machine;
            m.core().setBlockEngine(2);
            m.core().reset(prepared.payload_entry);
            if (with_isagrid) {
                m.pcu().setGridReg(GridReg::Domain,
                                   prepared.payload_domain);
            }
            RunResult r = m.core().run(100'000);
            instructions += r.instructions;
            const BlockEngine::HostStats &s =
                m.core().blockEngine()->stats();
            total.translations += s.translations;
            total.entries += s.entries;
            total.chained_entries += s.chained_entries;
            total.chain_hits += s.chain_hits;
            total.chain_misses += s.chain_misses;
            total.fallbacks += s.fallbacks;
            total.memo_hits += s.memo_hits;
            total.memo_fills += s.memo_fills;
            total.translated_insts += s.translated_insts;
        }
    }
    return total;
}

std::string
rate(std::uint64_t hits, std::uint64_t total)
{
    return total ? fmtPercent(100.0 * double(hits) / double(total), 1)
                 : std::string("-");
}

void
residencyRows(Table &t, const char *workload,
              const BlockEngine::HostStats &s, std::uint64_t insts)
{
    t.row({workload, "translated insts",
           rate(s.translated_insts, insts) + " (" +
               std::to_string(s.translated_insts) + ")"});
    t.row({workload, "chain hit rate",
           rate(s.chain_hits, s.chain_hits + s.chain_misses)});
    t.row({workload, "memo hit rate",
           rate(s.memo_hits, s.memo_hits + s.memo_fills)});
    t.row({workload, "entries",
           std::to_string(s.entries) + " (" +
               rate(s.chained_entries, s.entries) + " chained)"});
    t.row({workload, "fallbacks", std::to_string(s.fallbacks)});
}

/** See bench_trace_overhead.cc — same flat-scan baseline lookup. */
double
baselineMips(const std::string &path, const std::string &name)
{
    std::ifstream is(path);
    if (!is)
        return 0;
    std::stringstream ss;
    ss << is.rdbuf();
    std::string text = ss.str();
    std::size_t at = text.find("\"name\": \"" + name + "\"");
    if (at == std::string::npos)
        return 0;
    std::size_t key = text.find("\"insts_per_second\":", at);
    if (key == std::string::npos)
        return 0;
    return std::strtod(text.c_str() + key +
                           std::strlen("\"insts_per_second\":"),
                       nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
#ifndef BENCH_BASELINE_DIR
#define BENCH_BASELINE_DIR "."
#endif
    std::string baseline_path =
        std::string(BENCH_BASELINE_DIR) + "/BENCH_fig5.json";
    bool gate = false;
    unsigned repeat = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--baseline=", 11) == 0)
            baseline_path = argv[i] + 11;
        else if (std::strncmp(argv[i], "--repeat=", 9) == 0)
            repeat = unsigned(std::stoul(argv[i] + 9));
        else if (std::strcmp(argv[i], "--gate") == 0)
            gate = true;
        else
            fatal("usage: %s [--baseline=FILE] [--repeat=N] [--gate]",
                  argv[0]);
    }

    heading("Block-engine residency (fig5 lmbench + attack corpus)");

    LmbenchRun warm = runLmbench(BlockEngine::kDefaultHotThreshold);
    const BlockEngine *eng = warm.machine->core().blockEngine();
    Table t({"workload", "metric", "value"});
    residencyRows(t, "lmbench", eng->stats(),
                  warm.result.instructions);
    std::uint64_t attack_insts = 0;
    BlockEngine::HostStats attacks = runAttackCorpus(attack_insts);
    residencyRows(t, "attacks", attacks, attack_insts);
    t.print();

    heading("Translation latency");

    // Re-translate every block the lmbench run produced, cold: with a
    // hotness threshold of 1, one heat() per pc is exactly one
    // translation.
    LmbenchRun lat = runLmbench(1);
    BlockEngine *le = lat.machine->core().blockEngine();
    std::vector<Addr> pcs = le->blockPcs();
    double best_per_block_us = 1e99;
    std::uint64_t ops = 0;
    for (unsigned i = 0; i < std::max(repeat, 1u); ++i) {
        le->flushAll();
        ops = 0;
        auto t0 = std::chrono::steady_clock::now();
        for (Addr pc : pcs) {
            TransBlock *b = le->heat(pc);
            if (b && !b->dead)
                ops += b->ops.size();
        }
        auto t1 = std::chrono::steady_clock::now();
        double us =
            std::chrono::duration<double>(t1 - t0).count() * 1e6;
        best_per_block_us =
            std::min(best_per_block_us, us / double(pcs.size()));
    }
    std::printf("%zu blocks, %llu ops: %.3f us/block (best of %u)\n",
                pcs.size(), (unsigned long long)ops,
                best_per_block_us, repeat);

    heading("Host speed vs committed baseline");

    double best_mips = 0.0;
    for (unsigned i = 0; i < repeat; ++i) {
        LmbenchRun r = runLmbench(BlockEngine::kDefaultHotThreshold);
        best_mips = std::max(best_mips, double(r.result.instructions) /
                                            r.wall_seconds);
    }
    std::printf("block-engine lmbench: %.2f MIPS (best of %u)\n",
                best_mips / 1e6, repeat);

    bool ok = true;
    double committed = baselineMips(baseline_path, "lmbench_8E");
    if (committed > 0) {
        double margin = 100.0 * (best_mips / committed - 1.0);
        std::printf("committed lmbench_8E (decode cache): %.2f MIPS "
                    "(%s)\nblock-engine margin: %+.2f%% "
                    "(must not be slower): %s\n",
                    committed / 1e6, baseline_path.c_str(), margin,
                    margin > 0.0 ? "PASS" : "FAIL");
        if (margin <= 0.0)
            ok = false;
    } else {
        std::printf("no committed baseline at %s; skipping the "
                    "comparison\n", baseline_path.c_str());
    }

    if (!ok && !gate)
        std::printf("(informational: re-run with --gate to turn the "
                    "baseline comparison into an exit status)\n");
    return gate && !ok ? 1 : 0;
}
