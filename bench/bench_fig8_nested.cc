/**
 * @file
 * Figure 8 reproduction: the Nested Kernel use case on x86 (8E.).
 * Nest.Mon. mediates all memory-mapping changes through the nested
 * monitor domain; Nest.Mon.Log additionally journals each change to a
 * circular buffer. Baseline: unmodified kernel. Paper: <1% overhead.
 */

#include "bench_common.hh"

using namespace isagrid;
using namespace isagrid::bench;

int
main()
{
    printTable3();
    heading("Figure 8: Nested Kernel (x86, 8E.) normalized "
            "execution time");

    Table t({"app", "native (cycles)", "Nest.Mon.", "Nest.Mon.Log"});
    double worst = 1.0;
    for (const AppProfile &profile : AppProfile::all()) {
        KernelConfig native_cfg;
        native_cfg.mode = KernelMode::Monolithic;
        Cycle native = runAppOnKernel(true, profile, native_cfg,
                                      PcuConfig::config8E());

        KernelConfig mon_cfg;
        mon_cfg.mode = KernelMode::NestedMonitor;
        Cycle mon = runAppOnKernel(true, profile, mon_cfg,
                                   PcuConfig::config8E());

        KernelConfig log_cfg;
        log_cfg.mode = KernelMode::NestedMonitor;
        log_cfg.monitor_log = true;
        Cycle log = runAppOnKernel(true, profile, log_cfg,
                                   PcuConfig::config8E());

        double n_mon = double(mon) / double(native);
        double n_log = double(log) / double(native);
        worst = std::max({worst, n_mon, n_log});
        t.row({profile.name, std::to_string(native), fmt(n_mon, 4),
               fmt(n_log, 4)});
    }
    t.print();
    std::printf("\nworst normalized time: %.4f (paper: <1.01)\n", worst);
    return 0;
}
