/**
 * @file
 * Ablation bench for the Section 8 extensions implemented beyond the
 * paper's prototypes: preemptive timer scheduling, per-thread trusted
 * stacks, the Draco-style legal-instruction cache, and instruction
 * grouping (bitmap-size table).
 */

#include <memory>

#include "bench_common.hh"
#include "isa/riscv/riscv_isa.hh"
#include "isa/x86/x86_isa.hh"
#include "isagrid/grouped_isa.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

Cycle
runVariant(bool x86, KernelConfig config, PcuConfig pcu,
           std::unique_ptr<Machine> *keep = nullptr)
{
    AppProfile profile = AppProfile::sqlite();
    profile.total_blocks = 16000;
    return runAppOnKernel(x86, profile, config, pcu, nullptr, keep);
}

} // namespace

int
main()
{
    heading("Extension 1: preemptive timer + per-thread trusted "
            "stacks (sqlite profile, decomposed kernel)");
    {
        Table t({"arch", "variant", "cycles", "timer ticks",
                 "domain switches", "vs baseline"});
        for (bool x86 : {false, true}) {
            KernelConfig base_cfg;
            base_cfg.mode = KernelMode::Decomposed;
            std::unique_ptr<Machine> base_m;
            Cycle base = runVariant(x86, base_cfg,
                                    PcuConfig::config8E(), &base_m);
            t.row({x86 ? "x86" : "riscv", "decomposed (baseline)",
                   std::to_string(base), "0",
                   std::to_string(base_m->pcu().switches()), "1.0000"});

            KernelConfig timer_cfg = base_cfg;
            timer_cfg.timer_interval = 50000;
            std::unique_ptr<Machine> tm;
            Cycle timer = runVariant(x86, timer_cfg,
                                     PcuConfig::config8E(), &tm);
            t.row({x86 ? "x86" : "riscv", "+ timer 50k cycles",
                   std::to_string(timer),
                   std::to_string(tm->core().faultsTaken(
                       FaultType::TimerInterrupt)),
                   std::to_string(tm->pcu().switches()),
                   fmt(double(timer) / base, 4)});

            KernelConfig full_cfg = timer_cfg;
            full_cfg.per_thread_tstack = true;
            std::unique_ptr<Machine> fm;
            Cycle full = runVariant(x86, full_cfg,
                                    PcuConfig::config8E(), &fm);
            t.row({x86 ? "x86" : "riscv",
                   "+ per-thread trusted stacks",
                   std::to_string(full),
                   std::to_string(fm->core().faultsTaken(
                       FaultType::TimerInterrupt)),
                   std::to_string(fm->pcu().switches()),
                   fmt(double(full) / base, 4)});
        }
        t.print();
    }

    heading("Extension 2: Draco-style legal-instruction cache "
            "(energy proxy)");
    {
        Table t({"arch", "legal entries", "cycles", "legal hit-rate",
                 "CAM compares"});
        for (bool x86 : {false, true}) {
            for (std::uint32_t entries : {0u, 16u, 64u, 256u}) {
                PcuConfig pcu = PcuConfig::config8E();
                pcu.legal_cache_entries = entries;
                KernelConfig cfg;
                cfg.mode = KernelMode::Decomposed;
                std::unique_ptr<Machine> m;
                Cycle cycles = runVariant(x86, cfg, pcu, &m);
                auto &legal = m->pcu().legalCache();
                double rate =
                    legal.hits() + legal.misses() == 0
                        ? 0.0
                        : double(legal.hits()) /
                              double(legal.hits() + legal.misses());
                std::uint64_t cam =
                    m->pcu().instCache().camCompares() +
                    m->pcu().regCache().camCompares() +
                    m->pcu().maskCache().camCompares() +
                    m->pcu().sgtCache().camCompares();
                t.row({x86 ? "x86" : "riscv", std::to_string(entries),
                       std::to_string(cycles), fmtPercent(100 * rate),
                       std::to_string(cam)});
            }
        }
        t.print();
    }

    heading("Extension 3: instruction grouping (bitmap sizes)");
    {
        riscv::RiscvIsa rv;
        x86::X86Isa ix;
        Table t({"ISA", "grouping", "bitmap bits"});
        t.row({"rv64", "none (paper prototype)",
               std::to_string(rv.numInstTypes())});
        {
            GroupedIsa g(rv, {{riscv::IT_LB, riscv::IT_LH, riscv::IT_LW,
                               riscv::IT_LD, riscv::IT_LBU,
                               riscv::IT_LHU, riscv::IT_LWU},
                              {riscv::IT_SB, riscv::IT_SH, riscv::IT_SW,
                               riscv::IT_SD},
                              {riscv::IT_BEQ, riscv::IT_BNE,
                               riscv::IT_BLT, riscv::IT_BGE,
                               riscv::IT_BLTU, riscv::IT_BGEU}});
            t.row({"rv64", "loads/stores/branches grouped",
                   std::to_string(g.numInstTypes())});
        }
        t.row({"x86", "none (paper prototype)",
               std::to_string(ix.numInstTypes())});
        {
            GroupedIsa g(ix, {{x86::IT_LOAD8, x86::IT_LOAD16,
                               x86::IT_LOAD32, x86::IT_LOAD64},
                              {x86::IT_STORE8, x86::IT_STORE16,
                               x86::IT_STORE32, x86::IT_STORE64},
                              {x86::IT_JZ8, x86::IT_JNZ8, x86::IT_JL8,
                               x86::IT_JGE8, x86::IT_JZ32,
                               x86::IT_JNZ32}});
            t.row({"x86", "loads/stores/branches grouped",
                   std::to_string(g.numInstTypes())});
        }
        t.print();
    }

    std::printf("\nShapes: timer preemption and per-thread stacks stay "
                "within ~1%% of the baseline. The legal cache's hit "
                "rate is bounded by the code footprint between domain "
                "switches, and with the bypass register already "
                "serving instruction checks it buys little here — "
                "evidence for the paper's choice to ship the bypass "
                "register and leave the Draco-style cache as an option "
                "(Section 8). Grouping shrinks the bitmap at the cost "
                "of per-type control (Possible Simplification).\n");
    return 0;
}
