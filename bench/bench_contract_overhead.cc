/**
 * @file
 * Step-hook overhead on the simulator hot path.
 *
 * The contract checkers observe runs through CoreBase's StepHook
 * (cpu/step_hook.hh), which is always compiled in. The design claim
 * mirrors the tracing macros: with no hook attached the step path
 * pays one pointer compare and the simulator stays within 2% of its
 * uninstrumented speed. This harness measures the fig5 lmbench
 * scenario (decomposed RISC-V kernel, 8E. privilege caches — the
 * workload behind the committed BENCH_fig5.json numbers) in two
 * configurations:
 *
 *   disabled   hook support compiled in, no hook attached
 *   taint      a fully seeded TaintTracker attached (the perturbed-run
 *              cost the self-composition oracle pays)
 *
 * and reports host MIPS plus the relative overhead. When the
 * committed BENCH_fig5.json is found (--baseline=PATH overrides the
 * default), the disabled configuration is also compared against its
 * lmbench_8E insts_per_second; that comparison is informational
 * unless --gate is given, because wall-clock MIPS committed from one
 * host are only meaningful on comparable hardware.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "contract/taint.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

/** One timed lmbench run; returns {wall seconds, instructions}. */
std::pair<double, std::uint64_t>
timedRun(bool attach_taint)
{
    MachineConfig mc;
    mc.pcu = PcuConfig::config8E();
    auto machine = Machine::rocket(mc);
    Addr entry = buildLmbenchSuite(*machine, 5000);
    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(entry);

    TaintTracker taint(machine->isa());
    if (attach_taint) {
        // Seed like the oracle does: a perturbed CSR and a perturbed
        // page, so propagation work is representative.
        taint.seedCsr(0x100, ~RegVal{0});
        taint.seedPage(0x70000);
        machine->core().setStepHook(&taint);
    }

    auto start = std::chrono::steady_clock::now();
    RunResult r = machine->run(image.boot_pc, 500'000'000);
    auto stop = std::chrono::steady_clock::now();
    if (r.reason != StopReason::Halted)
        fatal("lmbench run did not halt: %s", faultName(r.fault));
    double secs = std::chrono::duration<double>(stop - start).count();
    return {secs, r.instructions};
}

/**
 * Best-of-N MIPS per configuration, rounds interleaved so host-load
 * drift hits both configurations alike (as bench_trace_overhead).
 */
std::vector<double>
measureAll(unsigned repeat)
{
    timedRun(false); // warm-up
    std::vector<double> best(2, 0);
    for (unsigned i = 0; i < repeat; ++i) {
        for (int m = 0; m < 2; ++m) {
            auto [secs, insts] = timedRun(m == 1);
            best[m] = std::max(best[m], double(insts) / secs);
        }
    }
    return best;
}

/** scenarios[name].insts_per_second from a BENCH_*.json (text scan). */
double
baselineMips(const std::string &path, const std::string &name)
{
    std::ifstream is(path);
    if (!is)
        return 0;
    std::stringstream ss;
    ss << is.rdbuf();
    std::string text = ss.str();
    std::size_t at = text.find("\"name\": \"" + name + "\"");
    if (at == std::string::npos)
        return 0;
    std::size_t key = text.find("\"insts_per_second\":", at);
    if (key == std::string::npos)
        return 0;
    return std::strtod(text.c_str() + key + std::strlen(
                           "\"insts_per_second\":"), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
#ifndef BENCH_BASELINE_DIR
#define BENCH_BASELINE_DIR "."
#endif
    std::string baseline_path =
        std::string(BENCH_BASELINE_DIR) + "/BENCH_fig5.json";
    bool gate = false;
    unsigned repeat = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--baseline=", 11) == 0)
            baseline_path = argv[i] + 11;
        else if (std::strncmp(argv[i], "--repeat=", 9) == 0)
            repeat = unsigned(std::stoul(argv[i] + 9));
        else if (std::strcmp(argv[i], "--gate") == 0)
            gate = true;
        else
            fatal("usage: %s [--baseline=FILE] [--repeat=N] [--gate]",
                  argv[0]);
    }

    heading("Step-hook overhead (fig5 lmbench, decomposed 8E.)");

    std::vector<double> mips = measureAll(repeat);
    const char *names[] = {"disabled", "taint-attached"};

    Table t({"step hook", "MIPS", "vs disabled"});
    for (int i = 0; i < 2; ++i) {
        double overhead = 100.0 * (mips[0] / mips[i] - 1.0);
        t.row({names[i], fmt(mips[i] / 1e6, 2),
               i == 0 ? "-" : fmtPercent(overhead, 2)});
    }
    t.print();

    bool ok = true;
    double committed = baselineMips(baseline_path, "lmbench_8E");
    if (committed > 0) {
        double regression = 100.0 * (committed / mips[0] - 1.0);
        std::printf("\ncommitted lmbench_8E baseline: %.2f MIPS (%s)\n"
                    "disabled-hook regression     : %+.2f%% "
                    "(budget 2%%): %s\n",
                    committed / 1e6, baseline_path.c_str(), regression,
                    regression < 2.0 ? "PASS" : "FAIL");
        if (regression >= 2.0)
            ok = false;
    } else {
        std::printf("\nno committed baseline at %s; skipping the "
                    "regression comparison\n", baseline_path.c_str());
    }

    std::printf("\nThe `disabled` row is what every non-contract run "
                "pays: the hook reduces to a null pointer compare on "
                "the step path. The taint-attached row is the "
                "perturbed-run cost inside the oracle's windows.\n");
    if (!ok && !gate)
        std::printf("(informational: re-run with --gate to turn the "
                    "baseline comparison into an exit status)\n");
    return gate && !ok ? 1 : 0;
}
