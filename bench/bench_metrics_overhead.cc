/**
 * @file
 * Metrics/profiler overhead on the simulator hot path.
 *
 * The performance monitor (sim/metrics.hh) adds one integer compare
 * per retired instruction to the core; everything else runs in the
 * cold tick() call every sampling epoch. The design budgets are:
 * detached, the simulator stays within 2% of the committed
 * BENCH_fig5.json speed; with default sampling intervals enabled the
 * cost over the detached configuration stays under 5%. This harness
 * measures the fig5 lmbench scenario (decomposed RISC-V kernel, 8E.
 * privilege caches) in three configurations:
 *
 *   disabled        monitor compiled in, never attached
 *   default         enableMetrics(), 1M-inst epochs, 100k-inst samples
 *   fine            100k-inst epochs, 10k-inst samples (informational)
 *
 * Rounds are interleaved and best-of-N like bench_trace_overhead, so
 * host-load drift hits all configurations alike. --gate turns the 5%
 * default-sampling budget into an exit status; it is host-independent
 * (a ratio of interleaved runs), so CI can enforce it. The committed
 * lmbench_8E comparison stays informational even under --gate:
 * wall-clock MIPS recorded on one host are only meaningful on
 * comparable hardware.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "sim/metrics.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

enum class MetricsMode { Disabled, Default, Fine };

/** One timed lmbench run; returns {wall seconds, instructions}. */
std::pair<double, std::uint64_t>
timedRun(MetricsMode mode)
{
    MachineConfig mc;
    mc.pcu = PcuConfig::config8E();
    auto machine = Machine::rocket(mc);
    Addr entry = buildLmbenchSuite(*machine, 5000);
    KernelConfig config;
    config.mode = KernelMode::Decomposed;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(entry);

    if (mode != MetricsMode::Disabled) {
        PerfConfig pc;
        if (mode == MetricsMode::Fine) {
            pc.metrics_interval = 100'000;
            pc.profile_interval = 10'000;
        }
        machine->enableMetrics(pc);
    }

    auto start = std::chrono::steady_clock::now();
    RunResult r = machine->run(image.boot_pc, 500'000'000);
    auto stop = std::chrono::steady_clock::now();
    if (r.reason != StopReason::Halted)
        fatal("lmbench run did not halt: %s", faultName(r.fault));
    if (machine->perf())
        machine->perf()->finalize(r.instructions, r.cycles);
    double secs = std::chrono::duration<double>(stop - start).count();
    return {secs, r.instructions};
}

/** Interleaved best-of-N MIPS (see bench_trace_overhead). */
std::vector<double>
measureAll(const std::vector<MetricsMode> &modes, unsigned repeat)
{
    timedRun(modes.front());
    std::vector<double> best(modes.size(), 0);
    for (unsigned i = 0; i < repeat; ++i) {
        for (std::size_t m = 0; m < modes.size(); ++m) {
            auto [secs, insts] = timedRun(modes[m]);
            best[m] = std::max(best[m], double(insts) / secs);
        }
    }
    return best;
}

/** scenarios[name].insts_per_second via a plain text scan. */
double
baselineMips(const std::string &path, const std::string &name)
{
    std::ifstream is(path);
    if (!is)
        return 0;
    std::stringstream ss;
    ss << is.rdbuf();
    std::string text = ss.str();
    std::size_t at = text.find("\"name\": \"" + name + "\"");
    if (at == std::string::npos)
        return 0;
    std::size_t key = text.find("\"insts_per_second\":", at);
    if (key == std::string::npos)
        return 0;
    return std::strtod(text.c_str() + key + std::strlen(
                           "\"insts_per_second\":"), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
#ifndef BENCH_BASELINE_DIR
#define BENCH_BASELINE_DIR "."
#endif
    std::string baseline_path =
        std::string(BENCH_BASELINE_DIR) + "/BENCH_fig5.json";
    bool gate = false;
    unsigned repeat = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--baseline=", 11) == 0)
            baseline_path = argv[i] + 11;
        else if (std::strncmp(argv[i], "--repeat=", 9) == 0)
            repeat = unsigned(std::stoul(argv[i] + 9));
        else if (std::strcmp(argv[i], "--gate") == 0)
            gate = true;
        else
            fatal("usage: %s [--baseline=FILE] [--repeat=N] [--gate]",
                  argv[0]);
    }

    heading("Metrics/profiler overhead (fig5 lmbench, decomposed 8E.)");

    struct Config
    {
        const char *name;
        MetricsMode mode;
    } configs[] = {
        {"disabled", MetricsMode::Disabled},
        {"default-sampling", MetricsMode::Default},
        {"fine-sampling", MetricsMode::Fine},
    };

    std::vector<MetricsMode> modes;
    for (const auto &c : configs)
        modes.push_back(c.mode);
    std::vector<double> mips = measureAll(modes, repeat);

    Table t({"metrics", "MIPS", "vs disabled"});
    for (std::size_t i = 0; i < std::size(configs); ++i) {
        double overhead = 100.0 * (mips[0] / mips[i] - 1.0);
        t.row({configs[i].name, fmt(mips[i] / 1e6, 2),
               i == 0 ? "-" : fmtPercent(overhead, 2)});
    }
    t.print();

    bool ok = true;
    double sampling_cost = 100.0 * (mips[0] / mips[1] - 1.0);
    std::printf("\ndefault-sampling overhead    : %+.2f%% "
                "(budget 5%%): %s\n",
                sampling_cost, sampling_cost < 5.0 ? "PASS" : "FAIL");
    if (sampling_cost >= 5.0)
        ok = false;

    double committed = baselineMips(baseline_path, "lmbench_8E");
    if (committed > 0) {
        double regression = 100.0 * (committed / mips[0] - 1.0);
        std::printf("committed lmbench_8E baseline: %.2f MIPS (%s)\n"
                    "disabled-metrics regression  : %+.2f%% "
                    "(budget 2%% on the recording host, informational "
                    "elsewhere)\n",
                    committed / 1e6, baseline_path.c_str(), regression);
    } else {
        std::printf("no committed baseline at %s; skipping the "
                    "regression comparison\n", baseline_path.c_str());
    }

    std::printf("\nThe `disabled` row is the configuration every "
                "non-monitored run pays: one never-taken integer "
                "compare per retire. Enabled rows add the cold tick "
                "path — a trusted-stack walk per profile sample and a "
                "full stats collection per metrics epoch.\n");
    if (!ok && !gate)
        std::printf("(informational: re-run with --gate to turn the "
                    "budget comparisons into an exit status)\n");
    return gate && !ok ? 1 : 0;
}
