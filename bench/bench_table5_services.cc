/**
 * @file
 * Table 5 reproduction: latency of four kernel services, each placed
 * in its own ISA domain with exactly the privileged resource it needs,
 * invoked from user space (ioctl-style). Baseline: the same services
 * in the unmodified kernel. Paper: <5% overhead per service.
 */

#include "bench_common.hh"
#include "kernel/layout.hh"
#include "kernel/syscalls.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

struct ServiceRow
{
    Sys sys;
    const char *resource;
    const char *purpose;
};

const ServiceRow rows[] = {
    {Sys::ServiceCpuid, "CPUID", "Get CPU information."},
    {Sys::ServiceMtrr, "MTRR", "Get memory type."},
    {Sys::ServicePmc0, "PMC", "Get number of interrupts."},
    {Sys::ServicePmc1, "PMC", "Get number of iTLB miss."},
};

double
measureService(bool x86, Sys sys, KernelMode mode)
{
    const unsigned iters = 300;
    auto machine = x86 ? Machine::gem5x86() : Machine::rocket();
    auto ap = x86 ? makeX86Asm(layout::userCodeBase)
                  : makeRiscvAsm(layout::userCodeBase);
    AsmIface &a = *ap;
    unsigned u0 = a.regUser(0), m = a.regArg(2);
    a.li(a.regSp(), layout::userStackTop);
    a.li(a.regArg(0), std::uint64_t(sys));
    a.syscallInst(); // warmup
    a.li(m, 1);
    a.simmark(m);
    a.li(u0, iters);
    auto loop = a.newLabel();
    a.bind(loop);
    a.li(a.regArg(0), std::uint64_t(sys));
    a.syscallInst();
    a.loopDec(u0, loop);
    a.li(m, 2);
    a.simmark(m);
    a.li(a.regArg(0), 0);
    a.halt(a.regArg(0));
    a.loadInto(machine->mem());

    KernelConfig config;
    config.mode = mode;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(layout::userCodeBase);
    RunResult r = machine->run(image.boot_pc, 200'000'000);
    if (r.reason != StopReason::Halted)
        fatal("service bench did not halt: %s", faultName(r.fault));
    return double(appRoiCycles(machine->core())) / double(iters);
}

void
runArch(bool x86)
{
    heading(std::string("Table 5: kernel service latency (") +
            (x86 ? "x86" : "RISC-V") + ", cycles per invocation)");
    Table t({"service", "Inst./Reg.", "Purpose", "ISA-Grid", "Native",
             "Overhead"});
    unsigned index = 1;
    for (const auto &row : rows) {
        double native =
            measureService(x86, row.sys, KernelMode::Monolithic);
        double grid =
            measureService(x86, row.sys, KernelMode::Decomposed);
        t.row({"Service-" + std::to_string(index++), row.resource,
               row.purpose, fmt(grid, 0), fmt(native, 0),
               fmtPercent(100.0 * (grid - native) / native)});
    }
    t.print();
}

} // namespace

int
main()
{
    printTable3();
    runArch(true);
    runArch(false);
    std::printf("\nPaper reference (Table 5, x86): 2081/1997 (+4.21%%), "
                "2038/1970 (+3.45%%), 1803/1721 (+4.76%%), 1776/1698 "
                "(+4.60%%) — service isolation costs less than 5%%.\n");
    return 0;
}
