/**
 * @file
 * Smoke benchmark of the bounded model checker's exploration
 * throughput: states/second, transitions, and peak frontier size for
 * each kernel mode on both prototypes, at increasing depth bounds.
 *
 * This is a scaling sanity check, not a paper figure: the trusted
 * stack makes the space grow roughly as gates^depth, so the numbers
 * show where the depth bound and state cap must sit for interactive
 * (CI-time) runs.
 */

#include <chrono>

#include "bench_common.hh"
#include "kernel/layout.hh"
#include "modelcheck/modelcheck.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

struct Case
{
    const char *name;
    bool x86;
    KernelMode mode;
};

McResult
explore(bool x86, KernelMode mode, unsigned depth, double &secs)
{
    auto machine = x86 ? Machine::gem5x86() : Machine::rocket();
    auto ua = x86 ? makeX86Asm(layout::userCodeBase)
                  : makeRiscvAsm(layout::userCodeBase);
    ua->li(ua->regArg(0), 0);
    ua->halt(ua->regArg(0));
    ua->loadInto(machine->mem());

    KernelConfig config;
    config.mode = mode;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(layout::userCodeBase);

    PolicySnapshot snap = PolicySnapshot::fromPcu(machine->pcu());
    McOptions options;
    options.depth_bound = depth;
    options.max_states = 1 << 18;
    ModelChecker checker(machine->isa(), machine->mem(), snap,
                         image.code_regions, 0, options);
    auto t0 = std::chrono::steady_clock::now();
    McResult result = checker.run();
    auto t1 = std::chrono::steady_clock::now();
    secs = std::chrono::duration<double>(t1 - t0).count();
    return result;
}

} // namespace

int
main()
{
    heading("isagrid-mc state-space exploration throughput");

    const Case cases[] = {
        {"riscv/native", false, KernelMode::Monolithic},
        {"riscv/decomposed", false, KernelMode::Decomposed},
        {"riscv/nested", false, KernelMode::NestedMonitor},
        {"x86/native", true, KernelMode::Monolithic},
        {"x86/decomposed", true, KernelMode::Decomposed},
        {"x86/nested", true, KernelMode::NestedMonitor},
    };

    Table table({"config", "depth", "states", "transitions",
                 "peak frontier", "states/sec", "violations"});
    for (const Case &c : cases) {
        for (unsigned depth : {3u, 5u}) {
            double secs = 0;
            McResult r = explore(c.x86, c.mode, depth, secs);
            table.row({c.name, std::to_string(depth),
                       std::to_string(r.stats.states) +
                           (r.stats.state_cap_hit ? " (cap)" : ""),
                       std::to_string(r.stats.transitions),
                       std::to_string(r.stats.peak_frontier),
                       secs > 0
                           ? fmt(double(r.stats.states) / secs, 0)
                           : "-",
                       std::to_string(r.violations())});
            // Smoke property: legitimate configurations stay clean.
            if (r.violations() != 0)
                fatal("%s depth %u: unexpected violations", c.name,
                      depth);
        }
    }
    table.print();
    return 0;
}
