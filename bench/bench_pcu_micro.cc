/**
 * @file
 * Host-side microbenchmarks (Google Benchmark) of the PCU fast paths:
 * how expensive the simulator's privilege checks are per simulated
 * instruction. These measure the *simulator*, not the modelled
 * hardware — useful for keeping the reproduction fast.
 */

#include <benchmark/benchmark.h>

#include "isa/riscv/riscv_isa.hh"
#include "isa/x86/x86_isa.hh"
#include "isagrid/domain_manager.hh"
#include "isagrid/pcu.hh"
#include "mem/phys_mem.hh"

using namespace isagrid;

namespace {

struct Fixture
{
    Fixture()
        : mem(16 * 1024 * 1024),
          pcu(isa, mem, PcuConfig::config8E()),
          dm(pcu, mem, makeConfig())
    {
        domain = dm.createBaselineDomain();
        for (std::uint32_t csr : riscv::RiscvIsa::controlledCsrs())
            dm.allowCsrRead(domain, csr);
        gate = dm.registerGate(0x1000, 0x2000, domain);
        gate_back = dm.registerGate(0x2000, 0x1000, 1);
        dm.publish();
        pcu.setGridReg(GridReg::Domain, domain);
    }

    static DomainManagerConfig
    makeConfig()
    {
        DomainManagerConfig c;
        c.tmem_base = 8 * 1024 * 1024;
        c.tmem_size = 1024 * 1024;
        return c;
    }

    riscv::RiscvIsa isa;
    PhysMem mem;
    PrivilegeCheckUnit pcu;
    DomainManager dm;
    DomainId domain;
    GateId gate;
    GateId gate_back;
};

void
BM_InstructionCheckBypassed(benchmark::State &state)
{
    Fixture f;
    f.pcu.checkInstruction(riscv::IT_ADD); // fill the bypass register
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.pcu.checkInstruction(riscv::IT_ADD));
    }
}
BENCHMARK(BM_InstructionCheckBypassed);

void
BM_CsrReadCheckWarm(benchmark::State &state)
{
    Fixture f;
    f.pcu.checkCsrRead(riscv::CSR_SEPC);
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.pcu.checkCsrRead(riscv::CSR_SEPC));
    }
}
BENCHMARK(BM_CsrReadCheckWarm);

void
BM_CsrWriteMaskCheck(benchmark::State &state)
{
    Fixture f;
    f.dm.setCsrMask(f.domain, riscv::CSR_SSTATUS, 0x2);
    f.dm.publish();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            f.pcu.checkCsrWrite(riscv::CSR_SSTATUS, 0, 2));
    }
}
BENCHMARK(BM_CsrWriteMaskCheck);

void
BM_GateRoundTrip(benchmark::State &state)
{
    Fixture f;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            f.pcu.gateCall(f.gate, 0x1000, false));
        benchmark::DoNotOptimize(
            f.pcu.gateCall(f.gate_back, 0x2000, false));
    }
}
BENCHMARK(BM_GateRoundTrip);

} // namespace

BENCHMARK_MAIN();
