/**
 * @file
 * Section 7.1 reproduction: privilege-cache hit rates with the
 * decomposed kernel and the 8E. configuration. The paper reports that
 * after running the applications, all HPT and SGT caches reach 99.9%.
 */

#include <memory>

#include "bench_common.hh"

using namespace isagrid;
using namespace isagrid::bench;

int
main()
{
    heading("Section 7.1: privilege-cache hit rates "
            "(decomposed kernel, 8E.)");
    Table t({"arch", "app", "inst-bitmap", "reg-bitmap", "bit-mask",
             "SGT"});

    for (bool x86 : {false, true}) {
        for (AppProfile profile : AppProfile::all()) {
            // Longer runs than the overhead figures: hit rates are
            // cumulative, and the paper measured full application
            // executions.
            profile.total_blocks = 120000;
            KernelConfig cfg;
            cfg.mode = KernelMode::Decomposed;
            std::unique_ptr<Machine> keep;
            runAppOnKernel(x86, profile, cfg, PcuConfig::config8E(),
                           nullptr, &keep);
            auto rate = [](auto &cache) {
                double total =
                    double(cache.hits() + cache.misses());
                return total == 0
                           ? 1.0
                           : double(cache.hits()) / total;
            };
            PrivilegeCheckUnit &pcu = keep->pcu();
            t.row({x86 ? "x86" : "riscv", profile.name,
                   fmtPercent(100 * rate(pcu.instCache()), 3),
                   fmtPercent(100 * rate(pcu.regCache()), 3),
                   fmtPercent(100 * rate(pcu.maskCache()), 3),
                   fmtPercent(100 * rate(pcu.sgtCache()), 3)});
        }
    }
    t.print();
    std::printf("\nPaper reference: hit rates of all SGT and HPT "
                "caches reach 99.9%% because hot kernel functions "
                "dominate; caches with no probes print 100%%.\n");
    return 0;
}
