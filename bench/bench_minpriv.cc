/**
 * @file
 * Throughput benchmark of the least-privilege inference pipeline
 * (src/verify/cfg.hh + dataflow.hh + minimize.hh): CFG construction,
 * interprocedural fixpoint and policy synthesis per kernel mode on
 * both prototypes, with and without deliberate over-provisioning.
 *
 * This is a tooling-latency check, not a paper figure: the analysis
 * runs at kernel-build and CI time, so it must stay interactive
 * (milliseconds) even for the nested-monitor images.
 */

#include <chrono>

#include "bench_common.hh"
#include "kernel/layout.hh"
#include "verify/dataflow.hh"
#include "verify/minimize.hh"

using namespace isagrid;
using namespace isagrid::bench;

namespace {

struct Case
{
    const char *name;
    bool x86;
    KernelMode mode;
    bool overprovision;
};

struct Measured
{
    std::size_t blocks = 0;
    std::size_t gate_sites = 0;
    std::size_t overgrants = 0;
    std::size_t kept = 0;
    double secs = 0;
};

Measured
analyse(const Case &c)
{
    auto machine = c.x86 ? Machine::gem5x86() : Machine::rocket();
    auto ua = c.x86 ? makeX86Asm(layout::userCodeBase)
                    : makeRiscvAsm(layout::userCodeBase);
    ua->li(ua->regArg(0), 0);
    ua->halt(ua->regArg(0));
    ua->loadInto(machine->mem());

    KernelConfig config;
    config.mode = c.mode;
    config.overprovision = c.overprovision;
    KernelBuilder builder(*machine, config);
    KernelImage image = builder.build(layout::userCodeBase);

    PolicySnapshot snap = PolicySnapshot::fromPcu(machine->pcu());
    auto t0 = std::chrono::steady_clock::now();
    PrivilegeInference inference(machine->isa(), machine->mem(), snap,
                                 image.code_regions);
    inference.addEntry(image.kernel_domain, image.trap_entry);
    MinimizeResult result =
        minimizePolicy(machine->isa(), machine->mem(), snap,
                       inference);
    auto t1 = std::chrono::steady_clock::now();

    Measured m;
    m.blocks = inference.cfg().blocks().size();
    m.gate_sites = inference.cfg().gateSites().size();
    m.overgrants = result.overgrants;
    m.kept = result.kept_grants;
    m.secs = std::chrono::duration<double>(t1 - t0).count();
    return m;
}

} // namespace

int
main()
{
    heading("isagrid-minpriv inference + minimization latency");

    const Case cases[] = {
        {"riscv/native", false, KernelMode::Monolithic, false},
        {"riscv/decomposed", false, KernelMode::Decomposed, false},
        {"riscv/decomposed+drift", false, KernelMode::Decomposed, true},
        {"riscv/nested", false, KernelMode::NestedMonitor, false},
        {"x86/native", true, KernelMode::Monolithic, false},
        {"x86/decomposed", true, KernelMode::Decomposed, false},
        {"x86/decomposed+drift", true, KernelMode::Decomposed, true},
        {"x86/nested", true, KernelMode::NestedMonitor, false},
    };

    Table table({"config", "blocks", "gate sites", "overgrants",
                 "kept", "ms", "blocks/sec"});
    for (const Case &c : cases) {
        Measured m = analyse(c);
        char ms[32], rate[32];
        std::snprintf(ms, sizeof(ms), "%.2f", m.secs * 1e3);
        std::snprintf(rate, sizeof(rate), "%.0f",
                      m.secs > 0 ? m.blocks / m.secs : 0.0);
        table.row({c.name, std::to_string(m.blocks),
                   std::to_string(m.gate_sites),
                   std::to_string(m.overgrants),
                   std::to_string(m.kept), ms, rate});
    }
    table.print();
    return 0;
}
